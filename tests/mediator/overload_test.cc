// Unit tests for the overload-protection layer (DESIGN.md §15): cancel
// tokens and their thread-local scope, the memory budget's soft/hard limit
// policy, the per-class admission gate, the capped+jittered poll backoff,
// the poll-message wire codec's new fields, and every typed
// kDeadlineExceeded / kOverloaded path through a live simulated mediator.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/memory_budget.h"
#include "mediator/admission.h"
#include "mediator/durability/serialize.h"
#include "mediator/mediator.h"
#include "relational/columnar.h"
#include "relational/parser.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

// ---------------------------------------------------------------------------
// CancelToken + thread-local scope
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, FirstCancelWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  SQ_EXPECT_OK(token.status());
  token.Cancel(Status::DeadlineExceeded("first"));
  token.Cancel(Status::Overloaded("second"));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, CheckCancelWithoutScopeIsOk) {
  EXPECT_EQ(CurrentCancelToken(), nullptr);
  SQ_EXPECT_OK(CheckCancel());
}

TEST(CancelTokenTest, ScopedInstallAndNestingRestores) {
  CancelToken outer, inner;
  {
    ScopedCancelScope a(&outer);
    EXPECT_EQ(CurrentCancelToken(), &outer);
    SQ_EXPECT_OK(CheckCancel());
    {
      ScopedCancelScope b(&inner);
      EXPECT_EQ(CurrentCancelToken(), &inner);
      inner.Cancel(Status::Overloaded("inner dead"));
      EXPECT_EQ(CheckCancel().code(), StatusCode::kOverloaded);
    }
    EXPECT_EQ(CurrentCancelToken(), &outer);
    SQ_EXPECT_OK(CheckCancel());  // outer token is untouched
  }
  EXPECT_EQ(CurrentCancelToken(), nullptr);
}

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudgetTest, AccountingAndPeak) {
  MemoryBudget b(/*soft=*/0, /*hard=*/0);
  b.Charge(100);
  b.Charge(50);
  EXPECT_EQ(b.used(), 150u);
  EXPECT_EQ(b.peak(), 150u);
  b.Release(120);
  EXPECT_EQ(b.used(), 30u);
  EXPECT_EQ(b.peak(), 150u);  // high-water survives releases
  b.Release(1000);            // clamped, never underflows
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryBudgetTest, SoftBreach) {
  MemoryBudget b(/*soft=*/100, /*hard=*/0);
  b.Charge(100);
  EXPECT_FALSE(b.SoftBreached());  // at the limit, not over it
  b.Charge(1);
  EXPECT_TRUE(b.SoftBreached());
  b.Release(50);
  EXPECT_FALSE(b.SoftBreached());
}

TEST(MemoryBudgetTest, HardBreachCancelsCurrentToken) {
  MemoryBudget b(/*soft=*/0, /*hard=*/100);
  b.Charge(200);  // no token installed: counts, cancels nobody
  EXPECT_EQ(b.hard_cancels(), 0u);
  CancelToken token;
  {
    ScopedCancelScope scope(&token);
    b.Charge(1);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.status().code(), StatusCode::kOverloaded);
    EXPECT_EQ(CheckCancel().code(), StatusCode::kOverloaded);
  }
  EXPECT_EQ(b.hard_cancels(), 1u);
}

TEST(MemoryBudgetTest, GlobalChargeAndScopedRelease) {
  EXPECT_EQ(GlobalMemoryBudget(), nullptr);
  EXPECT_EQ(ChargeGlobalBudget(64), nullptr);  // accounting off: no-op
  MemoryBudget b(/*soft=*/0, /*hard=*/0);
  {
    ScopedMemoryBudget scope(&b);
    EXPECT_EQ(GlobalMemoryBudget(), &b);
    EXPECT_EQ(ChargeGlobalBudget(64), &b);
    EXPECT_EQ(b.used(), 64u);
    ReleaseGlobalBudget(&b, 10);
    EXPECT_EQ(b.used(), 54u);
  }
  // A holder outliving the scope must not touch the replaced accountant.
  ReleaseGlobalBudget(&b, 54);
  EXPECT_EQ(b.used(), 54u);
  EXPECT_EQ(GlobalMemoryBudget(), nullptr);
}

// ---------------------------------------------------------------------------
// AdmissionGate
// ---------------------------------------------------------------------------

TEST(AdmissionGateTest, DisabledGateAdmitsEverything) {
  AdmissionGate gate;
  for (int i = 0; i < 100; ++i) {
    SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, /*soft_breached=*/false));
  }
  EXPECT_EQ(gate.admitted(), 100u);
  EXPECT_EQ(gate.rejected(), 0u);
}

TEST(AdmissionGateTest, CapsActivePlusQueuedPerClass) {
  AdmissionOptions opts;
  opts.max_active[static_cast<size_t>(QueryClass::kInteractive)] = 1;
  opts.max_queued[static_cast<size_t>(QueryClass::kInteractive)] = 1;
  opts.retry_after_hint = 7;
  AdmissionGate gate(opts);
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, false));
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, false));
  Status third = gate.Admit(QueryClass::kInteractive, false);
  EXPECT_EQ(third.code(), StatusCode::kOverloaded);
  EXPECT_NE(third.ToString().find("retry"), std::string::npos)
      << "rejection must carry the retry-after hint: " << third.ToString();
  // Another class is unaffected by the interactive cap.
  SQ_EXPECT_OK(gate.Admit(QueryClass::kBatch, false));
  // Releasing a slot re-opens admission.
  gate.Release(QueryClass::kInteractive);
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, false));
  EXPECT_EQ(gate.rejected(), 1u);
}

TEST(AdmissionGateTest, SoftBudgetBreachShedsOnlyBatch) {
  AdmissionGate gate;  // even a fully unlimited gate sheds batch work
  EXPECT_EQ(gate.Admit(QueryClass::kBatch, /*soft_breached=*/true).code(),
            StatusCode::kOverloaded);
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, /*soft_breached=*/true));
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInternal, /*soft_breached=*/true));
  EXPECT_EQ(gate.shed_soft_budget(), 1u);
  // Once usage drains below the soft limit batch work admits again.
  SQ_EXPECT_OK(gate.Admit(QueryClass::kBatch, /*soft_breached=*/false));
}

TEST(AdmissionGateTest, ResetInflightDropsSlotsKeepsCounters) {
  AdmissionOptions opts;
  opts.max_active[static_cast<size_t>(QueryClass::kInteractive)] = 1;
  AdmissionGate gate(opts);
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, false));
  EXPECT_EQ(gate.Admit(QueryClass::kInteractive, false).code(),
            StatusCode::kOverloaded);
  gate.ResetInflight();  // mediator crash: admitted queries died with it
  EXPECT_EQ(gate.Inflight(QueryClass::kInteractive), 0u);
  SQ_EXPECT_OK(gate.Admit(QueryClass::kInteractive, false));
  EXPECT_EQ(gate.admitted(), 2u);
  EXPECT_EQ(gate.rejected(), 1u);
}

// ---------------------------------------------------------------------------
// PollBackoffDelay: exponential backoff, ceiling, deterministic jitter
// ---------------------------------------------------------------------------

MediatorOptions BackoffOptions() {
  MediatorOptions o;
  o.poll_timeout = 2.0;
  o.poll_backoff = 2.0;
  return o;
}

TEST(PollBackoffTest, UncappedExponential) {
  MediatorOptions o = BackoffOptions();
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 1, 1), 4.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 2, 1), 8.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 3, 1), 16.0);
}

TEST(PollBackoffTest, CapIsACeiling) {
  MediatorOptions o = BackoffOptions();
  o.poll_backoff_cap = 5.0;
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 1, 1), 4.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 2, 1), 5.0);
  EXPECT_DOUBLE_EQ(PollBackoffDelay(o, 9, 1), 5.0);
}

TEST(PollBackoffTest, JitterDeterministicAndBounded) {
  MediatorOptions o = BackoffOptions();
  o.poll_jitter = 0.5;
  o.poll_jitter_seed = 42;
  bool saw_difference = false;
  for (int attempt = 0; attempt < 4; ++attempt) {
    for (uint64_t gen = 1; gen <= 8; ++gen) {
      const double base = PollBackoffDelay(BackoffOptions(), attempt, gen);
      const double d = PollBackoffDelay(o, attempt, gen);
      EXPECT_GE(d, base) << "attempt " << attempt << " gen " << gen;
      EXPECT_LE(d, base * 1.5 + 1e-9) << "attempt " << attempt << " gen "
                                      << gen;
      // Same (seed, generation, attempt) -> same delay, replays agree.
      EXPECT_DOUBLE_EQ(d, PollBackoffDelay(o, attempt, gen));
      if (d != base) saw_difference = true;
    }
  }
  EXPECT_TRUE(saw_difference) << "jitter never perturbed any delay";
  // A different seed draws a different schedule (somewhere in the grid).
  MediatorOptions o2 = o;
  o2.poll_jitter_seed = 43;
  bool seeds_differ = false;
  for (int attempt = 0; attempt < 4 && !seeds_differ; ++attempt) {
    for (uint64_t gen = 1; gen <= 8 && !seeds_differ; ++gen) {
      seeds_differ =
          PollBackoffDelay(o, attempt, gen) != PollBackoffDelay(o2, attempt, gen);
    }
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(PollBackoffTest, CapAppliesAfterJitter) {
  MediatorOptions o = BackoffOptions();
  o.poll_jitter = 0.5;
  o.poll_jitter_seed = 42;
  o.poll_backoff_cap = 5.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    for (uint64_t gen = 1; gen <= 8; ++gen) {
      EXPECT_LE(PollBackoffDelay(o, attempt, gen), 5.0)
          << "jitter escaped the ceiling at attempt " << attempt;
    }
  }
}

// ---------------------------------------------------------------------------
// Poll wire codec: deadline / class / retry-after round-trip
// ---------------------------------------------------------------------------

TEST(PollWireTest, PollRequestRoundTripsOverloadFields) {
  PollRequest req;
  req.id = 77;
  req.deadline = 123.5;
  req.qclass = QueryClass::kBatch;
  PollSpec p;
  p.relation = "R";
  p.attrs = {"r1", "r2"};
  auto cond = ParsePredicate("r1 < 10");
  SQ_ASSERT_OK(cond.status());
  p.cond = *cond;
  req.polls.push_back(p);
  PollSpec bare;
  bare.relation = "S";
  req.polls.push_back(bare);

  BinaryWriter w;
  EncodePollRequest(&w, req);
  BinaryReader r(w.bytes());
  auto back = DecodePollRequest(&r);
  SQ_ASSERT_OK(back.status());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->id, 77u);
  EXPECT_DOUBLE_EQ(back->deadline, 123.5);
  EXPECT_EQ(back->qclass, QueryClass::kBatch);
  ASSERT_EQ(back->polls.size(), 2u);
  EXPECT_EQ(back->polls[0].relation, "R");
  EXPECT_EQ(back->polls[0].attrs, (std::vector<std::string>{"r1", "r2"}));
  ASSERT_NE(back->polls[0].cond, nullptr);
  EXPECT_EQ(back->polls[0].cond->ToString(), req.polls[0].cond->ToString());
  EXPECT_EQ(back->polls[1].cond, nullptr);
}

TEST(PollWireTest, PollAnswerRoundTripsRetryAfter) {
  PollAnswer ans;
  ans.id = 9;
  ans.source = "DB1";
  ans.answered_at = 4.25;
  ans.epoch = 3;
  ans.retry_after = 10.75;  // a responder-side deadline rejection
  BinaryWriter w;
  EncodePollAnswer(&w, ans);
  BinaryReader r(w.bytes());
  auto back = DecodePollAnswer(&r);
  SQ_ASSERT_OK(back.status());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back->id, 9u);
  EXPECT_EQ(back->source, "DB1");
  EXPECT_DOUBLE_EQ(back->answered_at, 4.25);
  EXPECT_EQ(back->epoch, 3u);
  EXPECT_DOUBLE_EQ(back->retry_after, 10.75);
}

// ---------------------------------------------------------------------------
// Mediator-level typed paths, on the simulated Figure-1 deployment
// ---------------------------------------------------------------------------

class OverloadMediatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 20})));
  }

  void MakeMediator(const Annotation& ann, MediatorOptions options) {
    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    std::vector<SourceSetup> setups = {
        {db1_.get(), /*comm=*/1.0, /*q_proc=*/0.5, /*announce=*/0.0},
        {db2_.get(), /*comm=*/1.0, /*q_proc=*/0.5, /*announce=*/0.0},
    };
    auto med = Mediator::Create(*vdp, ann, setups, &scheduler_, options);
    ASSERT_TRUE(med.ok()) << med.status().ToString();
    mediator_ = std::move(med).value();
    SQ_ASSERT_OK(mediator_->Start());
  }

  /// Schedules a query at \p at, recording its terminal Result.
  void QueryAt(Time at, ViewQuery q) {
    scheduler_.At(at, [this, q]() {
      mediator_->SubmitQuery(q, [this](Result<ViewAnswer> ans) {
        results_.push_back(std::move(ans));
      });
    });
  }

  Scheduler scheduler_;
  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<Mediator> mediator_;
  std::vector<Result<ViewAnswer>> results_;
};

TEST_F(OverloadMediatorTest, DeadlineAlreadyPassedAtSubmitFailsFast) {
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  ViewQuery q{"T", {}, nullptr};
  q.deadline = 1.0;
  QueryAt(5.0, q);  // submit well past the absolute deadline
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(mediator_->stats().deadline_exceeded_queries, 1u);
}

TEST_F(OverloadMediatorTest, DeadlineExpiringMidPollFailsTyped) {
  // Hybrid annotation with virtual r3/s2: the full-width query must poll,
  // and a healthy round trip (comm 1.0 each way + q_proc 0.5) takes ~2.5s
  // — far past the deadline.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample23(*vdp), MediatorOptions{});
  ViewQuery q{"T", {}, nullptr};
  q.deadline = 5.5;
  QueryAt(5.0, q);
  scheduler_.RunUntil(200.0);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(mediator_->stats().deadline_exceeded_queries, 1u);
  // The deadline resolved the query AT 5.5, not when the poll round gave up.
  EXPECT_FALSE(mediator_->busy());
}

TEST_F(OverloadMediatorTest, ForwardedDeadlineRejectedByResponder) {
  // The PollRequest carries deadline - margin; with a 0.3s budget and a
  // 1.0s margin the stamped deadline is already past when the source
  // receives it, so the responder refuses with retry_after instead of
  // evaluating — and the mediator counts the arriving rejection.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample23(*vdp), MediatorOptions{});
  ViewQuery q{"T", {}, nullptr};
  q.deadline = 5.3;
  QueryAt(5.0, q);
  scheduler_.RunUntil(200.0);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(mediator_->stats().poll_rejects, 1u);
}

TEST_F(OverloadMediatorTest, DegradedReadsServeMaterializedFractionAtDeadline) {
  // Hybrid annotation (join keys materialized): at the deadline the query
  // abandons its poll round and returns the materialized fraction with
  // staleness annotations instead of a typed failure.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MediatorOptions options;
  options.degraded_reads = true;
  MakeMediator(AnnotationExample23(*vdp), options);
  ViewQuery q{"T", {}, nullptr};
  q.deadline = 5.5;
  QueryAt(5.0, q);
  scheduler_.RunUntil(200.0);
  ASSERT_EQ(results_.size(), 1u);
  ASSERT_TRUE(results_[0].ok()) << results_[0].status().ToString();
  EXPECT_TRUE(results_[0].value().degraded);
  EXPECT_GE(mediator_->stats().degraded_queries, 1u);
}

TEST_F(OverloadMediatorTest, AdmissionGateRejectsOverlappingInteractive) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MediatorOptions options;
  options.admission.max_active[static_cast<size_t>(
      QueryClass::kInteractive)] = 1;
  MakeMediator(AnnotationExample23(*vdp), options);  // polling: queries are slow
  ViewQuery q{"T", {}, nullptr};
  QueryAt(5.0, q);
  QueryAt(5.1, q);  // lands while the first still holds the only slot
  scheduler_.RunUntil(300.0);
  ASSERT_EQ(results_.size(), 2u);
  // Simulation order: the t=5.1 submission is refused in its own event,
  // BEFORE the first query's poll round completes.
  EXPECT_EQ(results_[0].status().code(), StatusCode::kOverloaded);
  EXPECT_NE(results_[0].status().ToString().find("retry"), std::string::npos);
  ASSERT_TRUE(results_[1].ok()) << results_[1].status().ToString();
  EXPECT_EQ(mediator_->stats().queries_rejected_overload, 1u);
}

TEST_F(OverloadMediatorTest, InternalClassBypassesTheGate) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MediatorOptions options;
  options.admission.max_active[static_cast<size_t>(
      QueryClass::kInteractive)] = 1;
  MakeMediator(AnnotationExample23(*vdp), options);  // slow, overlapping
  ViewQuery q{"T", {}, nullptr};
  q.qclass = QueryClass::kInternal;
  QueryAt(5.0, q);
  QueryAt(5.1, q);
  QueryAt(5.2, q);
  scheduler_.RunUntil(300.0);
  ASSERT_EQ(results_.size(), 3u);
  for (const auto& r : results_) {
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(mediator_->stats().queries_rejected_overload, 0u);
}

TEST_F(OverloadMediatorTest, SoftBudgetBreachShedsBatchQueries) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MemoryBudget budget(/*soft=*/1, /*hard=*/0);
  budget.Charge(100);  // retained state already past the soft limit
  ScopedMemoryBudget scoped(&budget);
  MakeMediator(AnnotationExample21(), MediatorOptions{});
  ViewQuery batch{"T", {}, nullptr};
  batch.qclass = QueryClass::kBatch;
  ViewQuery interactive{"T", {}, nullptr};
  QueryAt(5.0, batch);
  QueryAt(6.0, interactive);
  scheduler_.RunUntil(100.0);
  ASSERT_EQ(results_.size(), 2u);
  EXPECT_EQ(results_[0].status().code(), StatusCode::kOverloaded);
  ASSERT_TRUE(results_[1].ok()) << results_[1].status().ToString();
  EXPECT_EQ(mediator_->stats().queries_shed_soft_budget, 1u);
  EXPECT_EQ(mediator_->stats().queries_rejected_overload, 0u);
}

TEST_F(OverloadMediatorTest, HardBudgetBreachCancelsTheChargingQuery) {
  // Force every kernel through the columnar engine (zero size threshold) so
  // the query's join charges the budget mid-computation; the budget is
  // pre-loaded past its hard limit, so the first charge made UNDER the
  // query's cancel scope kills exactly that query with a typed error. The
  // IUP (which installs no token) keeps running: a later query answers.
  columnar::ScopedColumnarMode scoped_columnar(true, /*min_rows=*/0);
  MemoryBudget budget(/*soft=*/0, /*hard=*/1);
  ScopedMemoryBudget scoped(&budget);
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MakeMediator(AnnotationExample23(*vdp), MediatorOptions{});
  ViewQuery q{"T", {}, nullptr};
  QueryAt(5.0, q);
  scheduler_.RunUntil(300.0);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].status().code(), StatusCode::kOverloaded)
      << (results_[0].ok() ? "query unexpectedly succeeded"
                           : results_[0].status().ToString());
  EXPECT_EQ(mediator_->stats().queries_cancelled_memory, 1u);
  EXPECT_GE(budget.hard_cancels(), 1u);
  EXPECT_FALSE(mediator_->busy());
  EXPECT_FALSE(mediator_->crashed());
}

TEST_F(OverloadMediatorTest, CrashReleasesAdmissionSlots) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  MediatorOptions options;
  options.admission.max_active[static_cast<size_t>(
      QueryClass::kInteractive)] = 1;
  MakeMediator(AnnotationExample23(*vdp), options);
  ViewQuery q{"T", {}, nullptr};
  QueryAt(5.0, q);  // holds the only slot through its poll round
  scheduler_.At(5.2, [this]() { mediator_->Crash(); });
  scheduler_.RunUntil(10.0);
  // The admitted query died with the crash; its slot must not leak into the
  // next incarnation and wedge the class forever.
  EXPECT_EQ(mediator_->admission().Inflight(QueryClass::kInteractive), 0u);
}

}  // namespace
}  // namespace squirrel
