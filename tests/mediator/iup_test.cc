// Tests for the IUP over the paper's Figure 1 VDP, exercising Examples
// 2.1 (fully materialized support), 2.2 (virtual auxiliary R'), and the
// preparation phase's poll avoidance claims.

#include "mediator/iup.h"

#include <gtest/gtest.h>

#include "source/source_db.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/builder.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::DirectHarness;
using testing::MakeSchema;

class Figure1Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    // Seed data: r1=1 matches, r1=2 fails s3 filter, r1=3 fails r4 filter.
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({2, 200, 22, 100})));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({3, 100, 33, 999})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 99})));
  }

  std::unique_ptr<DirectHarness> MakeHarness(const Annotation& ann) {
    auto vdp = BuildFigure1Vdp();
    EXPECT_TRUE(vdp.ok());
    auto h = std::make_unique<DirectHarness>(
        std::move(vdp).value(), ann,
        std::map<std::string, SourceDb*>{{"DB1", db1_.get()},
                                         {"DB2", db2_.get()}});
    auto st = h->Load();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return h;
  }

  MultiDelta InsertR(const Tuple& t) {
    MultiDelta md;
    EXPECT_TRUE(md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))
                    ->AddInsert(t)
                    .ok());
    return md;
  }
  MultiDelta DeleteR(const Tuple& t) {
    MultiDelta md;
    EXPECT_TRUE(md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))
                    ->AddDelete(t)
                    .ok());
    return md;
  }
  MultiDelta InsertS(const Tuple& t) {
    MultiDelta md;
    EXPECT_TRUE(
        md.Mutable("S", MakeSchema("S(s1, s2, s3)"))->AddInsert(t).ok());
    return md;
  }
  MultiDelta DeleteS(const Tuple& t) {
    MultiDelta md;
    EXPECT_TRUE(
        md.Mutable("S", MakeSchema("S(s1, s2, s3)"))->AddDelete(t).ok());
    return md;
  }

  std::unique_ptr<SourceDb> db1_, db2_;
};

TEST_F(Figure1Fixture, InitialLoadMatchesView) {
  auto h = MakeHarness(AnnotationExample21());
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_EQ(testing::Rows(*t), "(1, 11, 100, 5) ");
}

TEST_F(Figure1Fixture, Example21InsertPropagatesWithoutPolling) {
  auto h = MakeHarness(AnnotationExample21());
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats stats,
      h->CommitAndPropagate("DB1", 1, InsertR(Tuple({4, 100, 44, 100}))));
  // Fully materialized support: "T can be maintained ... without polling
  // of the source databases" (Example 2.1).
  EXPECT_EQ(stats.polls, 0u);
  EXPECT_EQ(h->polls(), 0u);
  SQ_ASSERT_OK(h->VerifyRepos());
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_TRUE(t->Contains(Tuple({4, 44, 100, 5})));
}

TEST_F(Figure1Fixture, Example21DeletePropagates) {
  auto h = MakeHarness(AnnotationExample21());
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats stats,
      h->CommitAndPropagate("DB1", 1, DeleteR(Tuple({1, 100, 11, 100}))));
  EXPECT_EQ(stats.polls, 0u);
  SQ_ASSERT_OK(h->VerifyRepos());
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_TRUE(t->Empty());
}

TEST_F(Figure1Fixture, Example21SUpdates) {
  auto h = MakeHarness(AnnotationExample21());
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats s1,
      h->CommitAndPropagate("DB2", 1, InsertS(Tuple({200, 7, 20}))));
  EXPECT_EQ(s1.polls, 0u);
  SQ_ASSERT_OK(h->VerifyRepos());
  // Now r1=2 joins s1=200 (s3=20 < 50).
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_TRUE(t->Contains(Tuple({2, 22, 200, 7})));
  // Delete it again.
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats s2,
      h->CommitAndPropagate("DB2", 2, DeleteS(Tuple({200, 7, 20}))));
  EXPECT_EQ(s2.polls, 0u);
  SQ_ASSERT_OK(h->VerifyRepos());
}

TEST_F(Figure1Fixture, FilteredOutUpdateIsNoop) {
  auto h = MakeHarness(AnnotationExample21());
  // r4 != 100: filtered at the leaf-parent; nothing propagates.
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats stats,
      h->CommitAndPropagate("DB1", 1, InsertR(Tuple({9, 100, 99, 777}))));
  EXPECT_EQ(stats.nodes_processed, 0u);
  SQ_ASSERT_OK(h->VerifyRepos());
}

TEST_F(Figure1Fixture, Example22FrequentRUpdatesNeedNoPolling) {
  // R' virtual: ΔR propagation computes ΔT = ΔR' ⋈ S' from S' alone.
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp));
  EXPECT_FALSE(h->store().HasRepo("R'"));  // nothing materialized for R'
  for (int i = 0; i < 5; ++i) {
    SQ_ASSERT_OK_AND_ASSIGN(
        IupStats stats,
        h->CommitAndPropagate(
            "DB1", i + 1, InsertR(Tuple({10 + i, 100, 50 + i, 100}))));
    EXPECT_EQ(stats.polls, 0u) << "ΔR must not poll (Example 2.2)";
  }
  SQ_ASSERT_OK(h->VerifyRepos());
}

TEST_F(Figure1Fixture, Example22RareSUpdatePollsR) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp));
  // ΔS needs R' (virtual) to compute R' ⋈ ΔS': must poll DB1.
  SQ_ASSERT_OK_AND_ASSIGN(
      IupStats stats,
      h->CommitAndPropagate("DB2", 1, InsertS(Tuple({200, 7, 20}))));
  EXPECT_GE(stats.polls, 1u) << "ΔS must poll R (Example 2.2)";
  SQ_ASSERT_OK(h->VerifyRepos());
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_TRUE(t->Contains(Tuple({2, 22, 200, 7})));
}

TEST_F(Figure1Fixture, Example22MixedCommitSequence) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp));
  SQ_ASSERT_OK(h->CommitAndPropagate("DB1", 1,
                                     InsertR(Tuple({4, 200, 44, 100})))
                   .status());
  SQ_ASSERT_OK(
      h->CommitAndPropagate("DB2", 2, InsertS(Tuple({300, 8, 5}))).status());
  SQ_ASSERT_OK(h->CommitAndPropagate("DB1", 3,
                                     InsertR(Tuple({5, 300, 55, 100})))
                   .status());
  SQ_ASSERT_OK(
      h->CommitAndPropagate("DB2", 4, DeleteS(Tuple({100, 5, 10}))).status());
  SQ_ASSERT_OK(h->VerifyRepos());
}

TEST_F(Figure1Fixture, Example23HybridMaintenance) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp));
  // T stores only (r1, s1).
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, h->store().Repo("T"));
  EXPECT_EQ(t->schema().AttributeNames(),
            (std::vector<std::string>{"r1", "s1"}));
  EXPECT_TRUE(t->Contains(Tuple({1, 100})));
  // Updates keep the hybrid projection correct.
  SQ_ASSERT_OK(h->CommitAndPropagate("DB1", 1,
                                     InsertR(Tuple({4, 100, 44, 100})))
                   .status());
  SQ_ASSERT_OK(
      h->CommitAndPropagate("DB2", 2, InsertS(Tuple({200, 7, 20}))).status());
  SQ_ASSERT_OK(h->VerifyRepos());
}

TEST_F(Figure1Fixture, PreparationRequestsNothingWhenMaterialized) {
  auto h = MakeHarness(AnnotationExample21());
  std::map<std::string, Delta> leaf_deltas;
  Delta d(MakeSchema("R(r1, r2, r3, r4)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({7, 100, 77, 100})));
  leaf_deltas.emplace("R", std::move(d));
  SQ_ASSERT_OK_AND_ASSIGN(auto requests,
                          h->iup().PrepareTempRequests(leaf_deltas));
  EXPECT_TRUE(requests.empty());
}

TEST_F(Figure1Fixture, PreparationSkipsFilteredDeltas) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp));
  // An S update failing s3<50 must not request the (virtual) R' temp.
  std::map<std::string, Delta> leaf_deltas;
  Delta d(MakeSchema("S(s1, s2, s3)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({500, 9, 99})));
  leaf_deltas.emplace("S", std::move(d));
  SQ_ASSERT_OK_AND_ASSIGN(auto requests,
                          h->iup().PrepareTempRequests(leaf_deltas));
  EXPECT_TRUE(requests.empty());
}

TEST_F(Figure1Fixture, PreparationRequestsVirtualSibling) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp));
  std::map<std::string, Delta> leaf_deltas;
  Delta d(MakeSchema("S(s1, s2, s3)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({500, 9, 9})));
  leaf_deltas.emplace("S", std::move(d));
  SQ_ASSERT_OK_AND_ASSIGN(auto requests,
                          h->iup().PrepareTempRequests(leaf_deltas));
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].node, "R'");
  EXPECT_EQ(requests[0].attrs,
            (std::vector<std::string>{"r1", "r2", "r3"}));
}

TEST(PreparationDedupTest, DuplicateRequestsDroppedAcrossParents) {
  // Two exported parents read the same virtual sibling S' with identical
  // terms: preparation used to hand Vap::Materialize one request per parent.
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(r1, r2) key(r1)");
  b.Leaf("S", "DB2", "S", "S(s1, s2) key(s1)");
  b.LeafParent("R'", "R", {"r1", "r2"}, "");
  b.LeafParent("S'", "S", {"s1", "s2"}, "");
  b.Spj("T1", {{"R'", {"r1", "r2"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r1", "s1", "s2"}, "", /*exported=*/true);
  b.Spj("T2", {{"R'", {"r1", "r2"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r2", "s2"}, "", /*exported=*/true);
  auto vdp = b.Build();
  ASSERT_TRUE(vdp.ok()) << vdp.status().ToString();
  Annotation ann;
  SQ_ASSERT_OK(ann.SetAll(*vdp, "S'", AttrMode::kVirtual));

  auto db1 = std::make_unique<SourceDb>("DB1");
  auto db2 = std::make_unique<SourceDb>("DB2");
  SQ_ASSERT_OK(db1->AddRelation("R", MakeSchema("R(r1, r2) key(r1)")));
  SQ_ASSERT_OK(db2->AddRelation("S", MakeSchema("S(s1, s2) key(s1)")));
  SQ_ASSERT_OK(db1->InsertTuple(0, "R", Tuple({1, 100})));
  SQ_ASSERT_OK(db2->InsertTuple(0, "S", Tuple({100, 5})));
  DirectHarness h(std::move(vdp).value(), ann,
                  {{"DB1", db1.get()}, {"DB2", db2.get()}});
  SQ_ASSERT_OK(h.Load());

  std::map<std::string, Delta> leaf_deltas;
  Delta d(MakeSchema("R(r1, r2)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({2, 100})));
  leaf_deltas.emplace("R", std::move(d));
  SQ_ASSERT_OK_AND_ASSIGN(auto requests,
                          h.iup().PrepareTempRequests(leaf_deltas));
  ASSERT_EQ(requests.size(), 1u);  // one S' request, not one per parent
  EXPECT_EQ(requests[0].node, "S'");

  // End-to-end: the single S' request yields one poll temp (S) plus the
  // assembled S' temp — not one pair per requesting parent — and the
  // propagation is exact.
  MultiDelta md;
  SQ_ASSERT_OK(
      md.Mutable("R", MakeSchema("R(r1, r2)"))->AddInsert(Tuple({2, 100})));
  SQ_ASSERT_OK_AND_ASSIGN(IupStats stats,
                          h.CommitAndPropagate("DB1", 1.0, md));
  EXPECT_EQ(stats.temps_built, 2u);
  EXPECT_EQ(stats.polls, 1u);
  SQ_ASSERT_OK(h.VerifyRepos());
}

TEST_F(Figure1Fixture, KernelRejectsDeltaForNonLeaf) {
  auto h = MakeHarness(AnnotationExample21());
  std::map<std::string, Delta> bad;
  Delta d(MakeSchema("X(r1, r2, r3)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({1, 2, 3})));
  bad.emplace("R'", std::move(d));
  TempStore temps;
  EXPECT_FALSE(h->iup().RunKernel(bad, &temps).ok());
}

}  // namespace
}  // namespace squirrel
