// VAP tests: planning/merging (paper §6.3 phase 1), execution, key-based
// construction (Example 2.3), and Eager Compensation.

#include "mediator/vap.h"

#include <gtest/gtest.h>

#include "mediator/query_processor.h"
#include "source/source_db.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::DirectHarness;
using testing::MakeSchema;
using testing::Pred;
using testing::Rows;

class VapFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({2, 200, 150, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 20})));
  }

  std::unique_ptr<DirectHarness> MakeHarness(const Annotation& ann,
                                             VapStrategy strategy) {
    auto vdp = BuildFigure1Vdp();
    EXPECT_TRUE(vdp.ok());
    auto h = std::make_unique<DirectHarness>(
        std::move(vdp).value(), ann,
        std::map<std::string, SourceDb*>{{"DB1", db1_.get()},
                                         {"DB2", db2_.get()}},
        strategy);
    auto st = h->Load();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return h;
  }

  std::unique_ptr<SourceDb> db1_, db2_;
};

TEST_F(VapFixture, PlanEmptyForMaterializedRequest) {
  auto h = MakeHarness(AnnotationExample21(), VapStrategy::kChildBased);
  TempRequest req{"T", {"r1", "s1"}, nullptr};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({req}));
  EXPECT_TRUE(plan.Empty());
}

TEST_F(VapFixture, PlanExpandsToLeafPolls) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  // Query π_{r3,s1}σ_{r3<100}T — Example 2.3's q.
  TempRequest req{"T", {"r3", "s1"}, Pred("r3 < 100")};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({req}));
  ASSERT_FALSE(plan.Empty());
  // Child-based: both R' and S' are virtual, both sources polled.
  EXPECT_EQ(plan.polls.size(), 2u);
  auto polled = plan.PolledSources();
  EXPECT_EQ(polled.size(), 2u);
  // Leaf poll for R pushes the leaf-parent's selection r4 = 100.
  bool r_pushed = false;
  for (const auto& p : plan.polls) {
    if (p.source == "DB1") {
      ASSERT_TRUE(p.spec.cond != nullptr);
      EXPECT_NE(p.spec.cond->ToString().find("r4"), std::string::npos);
      r_pushed = true;
    }
  }
  EXPECT_TRUE(r_pushed);
}

TEST_F(VapFixture, ChildBasedExecutionAnswersQuery) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  QueryProcessor& qp = h->qp();
  ViewQuery q{"T", {"r3", "s1"}, Pred("r3 < 100")};
  SQ_ASSERT_OK_AND_ASSIGN(auto ans, qp.Answer(q, h->DirectPoll(), nullptr));
  EXPECT_TRUE(ans.used_virtual);
  EXPECT_EQ(Rows(ans.data), "(11, 100) ");  // r3=150 filtered by r3<100
}

TEST_F(VapFixture, PreparedQueryRunsNormalizationOnce) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  QueryProcessor& qp = h->qp();

  ViewQuery raw{"T", {}, Pred("r3 < 100")};  // empty attrs = full schema
  SQ_ASSERT_OK_AND_ASSIGN(PreparedQuery pq, qp.Prepare(raw));
  EXPECT_EQ(pq.query.attrs,
            (std::vector<std::string>{"r1", "r3", "s1", "s2"}));
  ASSERT_TRUE(pq.query.cond != nullptr);
  // needed = query attrs + cond attrs, schema order.
  EXPECT_EQ(pq.needed, (std::vector<std::string>{"r1", "r3", "s1", "s2"}));

  // One Prepare serves PlanFor and Answer; results match the raw-query path.
  SQ_ASSERT_OK_AND_ASSIGN(auto plan, qp.PlanFor(pq));
  EXPECT_TRUE(plan.has_value());
  SQ_ASSERT_OK_AND_ASSIGN(auto prepared_ans,
                          qp.Answer(pq, h->DirectPoll(), nullptr));
  SQ_ASSERT_OK_AND_ASSIGN(auto raw_ans,
                          qp.Answer(raw, h->DirectPoll(), nullptr));
  EXPECT_EQ(Rows(prepared_ans.data), Rows(raw_ans.data));
  EXPECT_TRUE(prepared_ans.used_virtual);

  // Prepare surfaces validation errors exactly like Normalize.
  EXPECT_FALSE(qp.Prepare(ViewQuery{"T", {"nope"}, nullptr}).ok());
  EXPECT_FALSE(qp.Prepare(ViewQuery{"R'", {}, nullptr}).ok());  // not exported
}

TEST_F(VapFixture, PreparedQueryNeededIncludesCondOnlyAttrs) {
  auto h = MakeHarness(AnnotationExample21(), VapStrategy::kChildBased);
  // r3 appears only in the condition: it must be in needed, not in attrs.
  ViewQuery raw{"T", {"r1"}, Pred("r3 < 100")};
  SQ_ASSERT_OK_AND_ASSIGN(PreparedQuery pq, h->qp().Prepare(raw));
  EXPECT_EQ(pq.query.attrs, std::vector<std::string>{"r1"});
  EXPECT_EQ(pq.needed, (std::vector<std::string>{"r1", "r3"}));
  SQ_ASSERT_OK_AND_ASSIGN(auto plan, h->qp().PlanFor(pq));
  EXPECT_FALSE(plan.has_value());  // fully materialized: repo covers
  SQ_ASSERT_OK_AND_ASSIGN(auto ans, h->qp().Answer(pq, nullptr, nullptr));
  EXPECT_EQ(Rows(ans.data), "(1) ");
}

TEST_F(VapFixture, KeyBasedPlanPollsOnlySupplierChild) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kKeyBased);
  // Virtual attr r3 comes from R' only; key-based uses π_{r1,s1}T ⋈ R'.
  TempRequest req{"T", {"r3", "s1"}, Pred("r3 < 100")};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({req}));
  EXPECT_EQ(plan.PolledSources(), std::vector<std::string>{"DB1"});
  EXPECT_EQ(plan.key_based.size(), 1u);
}

TEST_F(VapFixture, KeyBasedAndChildBasedAgree) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  ViewQuery q{"T", {"r3", "s1"}, Pred("r3 < 100")};
  auto h_child =
      MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  auto h_key = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kKeyBased);
  SQ_ASSERT_OK_AND_ASSIGN(auto a1,
                          h_child->qp().Answer(q, h_child->DirectPoll(),
                                               nullptr));
  SQ_ASSERT_OK_AND_ASSIGN(
      auto a2, h_key->qp().Answer(q, h_key->DirectPoll(), nullptr));
  EXPECT_TRUE(a1.data.EqualContents(a2.data))
      << Rows(a1.data) << " vs " << Rows(a2.data);
}

TEST_F(VapFixture, AutoPrefersKeyBasedWhenSiblingVirtual) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kAuto);
  TempRequest req{"T", {"r3", "s1"}, Pred("r3 < 100")};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({req}));
  // Auto should avoid polling DB2 (S' virtual) by going key-based.
  EXPECT_EQ(plan.PolledSources(), std::vector<std::string>{"DB1"});
}

TEST_F(VapFixture, MergingUnionsAttrsAndOrsConds) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  TempRequest q1{"T", {"r3"}, Pred("r3 < 100")};
  TempRequest q2{"T", {"s2"}, Pred("s2 > 0")};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({q1, q2}));
  // One merged T request at the end of the build order.
  ASSERT_FALSE(plan.build_order.empty());
  const TempRequest& t_req = plan.build_order.back();
  EXPECT_EQ(t_req.node, "T");
  // Merged attrs contain both r3 and s2.
  EXPECT_NE(std::find(t_req.attrs.begin(), t_req.attrs.end(), "r3"),
            t_req.attrs.end());
  EXPECT_NE(std::find(t_req.attrs.begin(), t_req.attrs.end(), "s2"),
            t_req.attrs.end());
}

TEST_F(VapFixture, EagerCompensationRollsBackPendingUpdates) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp), VapStrategy::kChildBased);
  // Commit an R update that the mediator has NOT yet reflected.
  SQ_ASSERT_OK(db1_->InsertTuple(1, "R", Tuple({7, 100, 77, 100})));
  // Poll R' with compensation for that pending delta.
  Vap::CompensationFn comp = [&](const std::string& source,
                                 const std::string& relation,
                                 const Schema& schema) -> Result<Delta> {
    Delta d(schema);
    if (source == "DB1" && relation == "R") {
      SQ_RETURN_IF_ERROR(d.AddInsert(Tuple({7, 100, 77, 100})));
    }
    return d;
  };
  TempRequest req{"R'", {"r1", "r2", "r3"}, nullptr};
  SQ_ASSERT_OK_AND_ASSIGN(TempStore temps,
                          h->vap().Materialize({req}, h->DirectPoll(), comp));
  const TempStore::Entry* e = temps.Find("R'");
  ASSERT_NE(e, nullptr);
  // The compensated answer must NOT contain the pending tuple.
  EXPECT_FALSE(e->data.Contains(Tuple({1 + 6, 100, 77})));
  EXPECT_TRUE(e->data.Contains(Tuple({1, 100, 11})));
}

TEST_F(VapFixture, WithoutCompensationPendingLeaks) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample22(*vdp), VapStrategy::kChildBased);
  SQ_ASSERT_OK(db1_->InsertTuple(1, "R", Tuple({7, 100, 77, 100})));
  TempRequest req{"R'", {"r1", "r2", "r3"}, nullptr};
  SQ_ASSERT_OK_AND_ASSIGN(
      TempStore temps, h->vap().Materialize({req}, h->DirectPoll(), nullptr));
  EXPECT_TRUE(temps.Find("R'")->data.Contains(Tuple({7, 100, 77})));
}

TEST_F(VapFixture, ExecuteWithoutPollFnFails) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  auto h = MakeHarness(AnnotationExample23(*vdp), VapStrategy::kChildBased);
  TempRequest req{"T", {"r3"}, nullptr};
  SQ_ASSERT_OK_AND_ASSIGN(VapPlan plan, h->vap().Plan({req}));
  ASSERT_FALSE(plan.polls.empty());
  EXPECT_FALSE(h->vap().Execute(plan, nullptr, nullptr).ok());
}

TEST_F(VapFixture, TempStoreCoverage) {
  TempStore temps;
  TempStore::Entry e;
  e.data = testing::MakeRelation("X(a, b)", {Tuple({1, 2})});
  e.attrs = {"a", "b"};
  e.cond = Expr::True();
  temps.Put("N", std::move(e));
  EXPECT_TRUE(temps.Covers("N", {"a"}));
  EXPECT_TRUE(temps.Covers("N", {"a", "b"}));
  EXPECT_FALSE(temps.Covers("N", {"a", "z"}));
  EXPECT_FALSE(temps.Covers("M", {"a"}));
}

TEST_F(VapFixture, TempStoreApplyNodeDeltaFilters) {
  TempStore temps;
  TempStore::Entry e;
  e.data = Relation(MakeSchema("X(a)"), Semantics::kBag);
  SQ_ASSERT_OK(e.data.Insert(Tuple({1})));
  e.attrs = {"a"};
  e.cond = Pred("a < 10");
  temps.Put("N", std::move(e));
  // Full delta on (a, b): +(2, 5) passes the cond; +(50, 5) filtered.
  Delta d(MakeSchema("X(a, b)"));
  SQ_ASSERT_OK(d.AddInsert(Tuple({2, 5})));
  SQ_ASSERT_OK(d.AddInsert(Tuple({50, 5})));
  SQ_ASSERT_OK(temps.ApplyNodeDelta("N", d));
  EXPECT_TRUE(temps.Find("N")->data.Contains(Tuple({2})));
  EXPECT_FALSE(temps.Find("N")->data.Contains(Tuple({50})));
}

}  // namespace
}  // namespace squirrel
