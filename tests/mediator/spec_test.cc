#include "mediator/spec.h"

#include <gtest/gtest.h>

#include "testing/util.h"

namespace squirrel {
namespace {

constexpr const char* kFig1Spec = R"spec(
# Figure 1 as a spec.
source DB1 comm 1.0 qproc 0.5 announce 0
  relation R(r1, r2, r3, r4) key(r1)
source DB2 comm 0.5
  relation S(s1, s2, s3) key(s1)
export T = project[r1, r3, s1, s2](
    select[r4 = 100](R) join[r2 = s1] select[s3 < 50](S))
annotate T: r1 m, r3 v, s1 m, s2 v
annotate R': r1 v, r2 v, r3 v
annotate S': s1 v, s2 v
option strategy key
option update_period 2.5
option uproc 0.1
)spec";

TEST(SpecTest, ParsesAllDirectives) {
  SQ_ASSERT_OK_AND_ASSIGN(MediatorSpec spec, ParseMediatorSpec(kFig1Spec));
  ASSERT_EQ(spec.sources.size(), 2u);
  EXPECT_EQ(spec.sources[0].name, "DB1");
  EXPECT_DOUBLE_EQ(spec.sources[0].comm_delay, 1.0);
  EXPECT_DOUBLE_EQ(spec.sources[0].q_proc_delay, 0.5);
  EXPECT_DOUBLE_EQ(spec.sources[1].comm_delay, 0.5);
  ASSERT_EQ(spec.sources[0].relations.size(), 1u);
  EXPECT_EQ(spec.sources[0].relations[0].name, "R");
  ASSERT_EQ(spec.exports.size(), 1u);
  EXPECT_EQ(spec.exports[0].first, "T");
  EXPECT_EQ(spec.annotations.size(), 3u);
  EXPECT_EQ(spec.options.strategy, VapStrategy::kKeyBased);
  EXPECT_DOUBLE_EQ(spec.options.update_period, 2.5);
  EXPECT_DOUBLE_EQ(spec.options.u_proc_delay, 0.1);
}

TEST(SpecTest, MultiLineExportContinuation) {
  SQ_ASSERT_OK_AND_ASSIGN(MediatorSpec spec, ParseMediatorSpec(kFig1Spec));
  // The two-line export parsed into one definition.
  SQ_ASSERT_OK_AND_ASSIGN(PlannerInput input, spec.ToPlannerInput());
  ASSERT_EQ(input.exports.size(), 1u);
  EXPECT_EQ(input.exports[0].name, "T");
}

TEST(SpecTest, GenerateSystemEndToEnd) {
  SQ_ASSERT_OK_AND_ASSIGN(MediatorSpec spec, ParseMediatorSpec(kFig1Spec));
  Scheduler scheduler;
  SQ_ASSERT_OK_AND_ASSIGN(GeneratedSystem sys,
                          GenerateSystem(spec, &scheduler));
  ASSERT_NE(sys.Source("DB1"), nullptr);
  ASSERT_NE(sys.Source("DB2"), nullptr);
  EXPECT_EQ(sys.Source("Nope"), nullptr);
  EXPECT_TRUE(sys.vdp.Contains("T"));
  EXPECT_TRUE(sys.annotation.IsHybrid(sys.vdp, "T"));

  // Load data, start, query through the generated mediator.
  SQ_ASSERT_OK(sys.Source("DB1")->InsertTuple(0, "R",
                                              Tuple({1, 100, 11, 100})));
  SQ_ASSERT_OK(sys.Source("DB2")->InsertTuple(0, "S", Tuple({100, 5, 10})));
  SQ_ASSERT_OK(sys.mediator->Start());
  bool answered = false;
  scheduler.At(1.0, [&]() {
    sys.mediator->SubmitQuery(ViewQuery{"T", {"r1", "s1"}, nullptr},
                              [&](Result<ViewAnswer> ans) {
                                ASSERT_TRUE(ans.ok());
                                EXPECT_EQ(ans->data.DistinctSize(), 1u);
                                answered = true;
                              });
  });
  scheduler.RunUntil(100.0);
  EXPECT_TRUE(answered);
}

TEST(SpecTest, CommentsAndBlankLinesIgnored) {
  SQ_ASSERT_OK_AND_ASSIGN(MediatorSpec spec, ParseMediatorSpec(R"(
# leading comment

source DB comm 0  # trailing comment
  relation R(a)
export E = project[a](R)
)"));
  EXPECT_EQ(spec.sources.size(), 1u);
  EXPECT_EQ(spec.exports.size(), 1u);
}

TEST(SpecTest, Errors) {
  EXPECT_FALSE(ParseMediatorSpec("").ok());  // no sources
  EXPECT_FALSE(ParseMediatorSpec("source DB\n").ok());  // no exports
  EXPECT_FALSE(
      ParseMediatorSpec("relation R(a)\nexport E = R\n").ok());  // orphan rel
  EXPECT_FALSE(ParseMediatorSpec(
                   "source DB frobnicate 1\n relation R(a)\nexport E = R\n")
                   .ok());
  EXPECT_FALSE(ParseMediatorSpec(
                   "source DB\n relation R(a)\nexport E = R\n"
                   "option strategy bogus\n")
                   .ok());
  EXPECT_FALSE(ParseMediatorSpec(
                   "source DB\n relation R(a)\nexport NoEquals\n")
                   .ok());
}

TEST(SpecTest, DuplicateRelationNamesAcrossSourcesRejected) {
  auto spec = ParseMediatorSpec(R"(
source DB1
  relation R(a)
source DB2
  relation R(b)
export E = project[a](R)
)");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->ToPlannerInput().ok());
}

TEST(SpecTest, AnnotationForUnknownNodeFailsAtGeneration) {
  auto spec = ParseMediatorSpec(R"(
source DB
  relation R(a)
export E = project[a](R)
annotate Bogus: a v
)");
  ASSERT_TRUE(spec.ok());
  Scheduler scheduler;
  EXPECT_FALSE(GenerateSystem(*spec, &scheduler).ok());
}

}  // namespace
}  // namespace squirrel
