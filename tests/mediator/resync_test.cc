// Unit tests for the anti-entropy resync layer: ResyncManager lifecycle and
// corrective-diff algebra, the update queue's lossless backpressure shed
// (CoalesceOldest and its WAL-replay twin CoalesceOldestIn), and the
// degraded-answer staleness annotations.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "mediator/freshness.h"
#include "mediator/resync.h"
#include "mediator/update_queue.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

Relation MakeRel(const std::string& decl,
                 const std::vector<Tuple>& rows) {
  Relation rel(MakeSchema(decl), Semantics::kBag);
  for (const Tuple& t : rows) SQ_EXPECT_OK(rel.Insert(t));
  return rel;
}

ResyncManager MakeManager() {
  ResyncManager mgr;
  mgr.Register("DB1", {{"R", MakeSchema("R(a, b) key(a)")},
                       {"Q", MakeSchema("Q(x) key(x)")}});
  mgr.Register("DB2", {});  // virtual-only contributor: epoch tracking only
  return mgr;
}

TEST(ResyncManagerTest, RegistrationAndLifecycle) {
  ResyncManager mgr = MakeManager();
  EXPECT_TRUE(mgr.NeedsResync("DB1"));
  EXPECT_FALSE(mgr.NeedsResync("DB2"));
  EXPECT_FALSE(mgr.NeedsResync("Unknown"));
  EXPECT_EQ(mgr.Relations("DB1"), (std::vector<std::string>{"Q", "R"}));
  EXPECT_TRUE(mgr.Relations("DB2").empty());

  EXPECT_EQ(mgr.Epoch("DB1"), 1u);
  EXPECT_EQ(mgr.Health("DB1"), SourceHealth::kHealthy);
  EXPECT_FALSE(mgr.AnyUnhealthy());
  EXPECT_TRUE(mgr.UnhealthySources().empty());

  mgr.SetEpoch("DB1", 3);
  mgr.SetHealth("DB1", SourceHealth::kSuspect);
  mgr.SetHealth("DB2", SourceHealth::kResyncing);
  EXPECT_EQ(mgr.Epoch("DB1"), 3u);
  EXPECT_TRUE(mgr.AnyUnhealthy());
  EXPECT_EQ(mgr.UnhealthySources(),
            (std::vector<std::string>{"DB1", "DB2"}));

  EXPECT_EQ(mgr.OutstandingRequest("DB1"), 0u);
  mgr.SetOutstandingRequest("DB1", 7);
  EXPECT_EQ(mgr.OutstandingRequest("DB1"), 7u);

  SQ_ASSERT_OK(mgr.SetMirror("DB1", "R",
                             MakeRel("R(a, b) key(a)", {Tuple({1, 10})})));
  mgr.WipeVolatile();
  EXPECT_EQ(mgr.Epoch("DB1"), 1u);
  EXPECT_EQ(mgr.Health("DB2"), SourceHealth::kHealthy);
  EXPECT_EQ(mgr.OutstandingRequest("DB1"), 0u);
  // Mirror slots survive (recovery re-installs into them) but are emptied.
  ASSERT_EQ(mgr.Mirror("DB1").size(), 2u);
  EXPECT_EQ(mgr.Mirror("DB1").at("R").DistinctSize(), 0u);
  // Registration survives the wipe: recovery re-installs mirrors into the
  // same announcing-source slots.
  EXPECT_TRUE(mgr.NeedsResync("DB1"));
}

TEST(ResyncManagerTest, AdvanceTracksCommitsAndIgnoresUntracked) {
  ResyncManager mgr = MakeManager();
  SQ_ASSERT_OK(mgr.SetMirror("DB1", "R",
                             MakeRel("R(a, b) key(a)", {Tuple({1, 10})})));
  MultiDelta d;
  SQ_ASSERT_OK(d.Mutable("R", MakeSchema("R(a, b) key(a)"))
                   ->AddInsert(Tuple({2, 20})));
  SQ_ASSERT_OK(d.Mutable("R", MakeSchema("R(a, b) key(a)"))
                   ->AddDelete(Tuple({1, 10})));
  // A relation no VDP leaf references must be skipped, not an error.
  SQ_ASSERT_OK(d.Mutable("Untracked", MakeSchema("Untracked(z)"))
                   ->AddInsert(Tuple({9})));
  SQ_ASSERT_OK(mgr.Advance("DB1", d));
  const Relation& r = mgr.Mirror("DB1").at("R");
  EXPECT_EQ(r.DistinctSize(), 1u);
  EXPECT_TRUE(r.Contains(Tuple({2, 20})));
  // Advancing an untracked source is a no-op.
  SQ_ASSERT_OK(mgr.Advance("DB2", d));
}

TEST(ResyncManagerTest, CorrectiveMovesBelievedStateOntoSnapshot) {
  ResyncManager mgr = MakeManager();
  SQ_ASSERT_OK(mgr.SetMirror(
      "DB1", "R",
      MakeRel("R(a, b) key(a)", {Tuple({1, 10}), Tuple({2, 20})})));
  SQ_ASSERT_OK(mgr.SetMirror("DB1", "Q", MakeRel("Q(x) key(x)", {})));

  // In transit (queued + in-flight): delete (2,20), insert (3,30); believed
  // state of R is therefore {(1,10), (3,30)}.
  MultiDelta in_transit;
  SQ_ASSERT_OK(in_transit.Mutable("R", MakeSchema("R(a, b) key(a)"))
                   ->AddDelete(Tuple({2, 20})));
  SQ_ASSERT_OK(in_transit.Mutable("R", MakeSchema("R(a, b) key(a)"))
                   ->AddInsert(Tuple({3, 30})));

  // The snapshot: (4,40) was committed but never announced (the loss the
  // resync must heal), and (3,30) is absent — pure algebra check that
  // in-transit changes are charged to believed state (in a live run they
  // are already in the snapshot and must not be applied twice; here the
  // diff must synthesize the compensating delete).
  std::map<std::string, Relation> snapshot;
  snapshot.emplace("R", MakeRel("R(a, b) key(a)",
                                {Tuple({1, 10}), Tuple({4, 40})}));
  snapshot.emplace("Q", MakeRel("Q(x) key(x)", {Tuple({5})}));

  SQ_ASSERT_OK_AND_ASSIGN(MultiDelta fix,
                          mgr.Corrective("DB1", in_transit, snapshot));

  // Applying believed + corrective must land exactly on the snapshot.
  Relation believed =
      MakeRel("R(a, b) key(a)", {Tuple({1, 10}), Tuple({3, 30})});
  ASSERT_NE(fix.Find("R"), nullptr);
  SQ_ASSERT_OK(ApplyDelta(&believed, *fix.Find("R")));
  EXPECT_TRUE(believed.EqualContents(snapshot.at("R")));
  Relation believed_q = MakeRel("Q(x) key(x)", {});
  ASSERT_NE(fix.Find("Q"), nullptr);
  SQ_ASSERT_OK(ApplyDelta(&believed_q, *fix.Find("Q")));
  EXPECT_TRUE(believed_q.EqualContents(snapshot.at("Q")));
}

TEST(ResyncManagerTest, CorrectiveIsEmptyWhenNothingWasLost) {
  ResyncManager mgr = MakeManager();
  SQ_ASSERT_OK(mgr.SetMirror("DB1", "R",
                             MakeRel("R(a, b) key(a)", {Tuple({1, 10})})));
  SQ_ASSERT_OK(mgr.SetMirror("DB1", "Q", MakeRel("Q(x) key(x)", {})));
  std::map<std::string, Relation> snapshot;
  snapshot.emplace("R", MakeRel("R(a, b) key(a)", {Tuple({1, 10})}));
  snapshot.emplace("Q", MakeRel("Q(x) key(x)", {}));
  SQ_ASSERT_OK_AND_ASSIGN(MultiDelta fix,
                          mgr.Corrective("DB1", MultiDelta{}, snapshot));
  EXPECT_TRUE(fix.Empty());
}

UpdateMessage Msg(const std::string& source, uint64_t seq, const Tuple& t,
                  int64_t count = 1) {
  UpdateMessage msg;
  msg.source = source;
  msg.seq = seq;
  msg.send_time = static_cast<Time>(seq);
  EXPECT_TRUE(
      msg.delta.Mutable("R", MakeSchema("R(a, b)"))->Add(t, count).ok());
  return msg;
}

TEST(UpdateQueueShedTest, CoalesceOldestMergesOldestSameSourcePair) {
  UpdateQueue q;
  q.Enqueue(Msg("DB1", 1, Tuple({1, 10})));
  q.Enqueue(Msg("DB2", 1, Tuple({7, 70})));
  q.Enqueue(Msg("DB1", 2, Tuple({2, 20})));
  SQ_ASSERT_OK_AND_ASSIGN(MultiDelta before, q.PendingFrom("DB1"));

  ASSERT_TRUE(q.CoalesceOldest());
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.TotalShed(), 1u);
  // Front is now the untouched DB2 message; the merged DB1 survivor keeps
  // the LATER identity and position, so per-source FIFO order holds.
  std::vector<UpdateMessage> flushed = q.Flush();
  EXPECT_EQ(flushed[0].source, "DB2");
  EXPECT_EQ(flushed[1].source, "DB1");
  EXPECT_EQ(flushed[1].seq, 2u);
  ASSERT_NE(flushed[1].delta.Find("R"), nullptr);
  // Lossless: the survivor carries the smashed net change of both messages.
  EXPECT_EQ(flushed[1].delta.Find("R")->CountOf(Tuple({1, 10})), 1);
  EXPECT_EQ(flushed[1].delta.Find("R")->CountOf(Tuple({2, 20})), 1);
  EXPECT_TRUE(before.Find("R")->EqualContents(*flushed[1].delta.Find("R")));
}

TEST(UpdateQueueShedTest, CoalesceOldestRefusesWhenAllSourcesDistinct) {
  UpdateQueue q;
  q.Enqueue(Msg("DB1", 1, Tuple({1, 10})));
  q.Enqueue(Msg("DB2", 1, Tuple({2, 20})));
  EXPECT_FALSE(q.CoalesceOldest());  // shrinking would lose a message
  EXPECT_EQ(q.Size(), 2u);
  EXPECT_EQ(q.TotalShed(), 0u);
}

TEST(UpdateQueueShedTest, CoalesceOldestInHonorsReplaySkip) {
  // Replay's queue still holds an open transaction's flushed messages at the
  // front; the skip must keep the shed search off them.
  std::deque<UpdateMessage> q = {Msg("DB1", 1, Tuple({1, 10})),
                                 Msg("DB1", 2, Tuple({2, 20})),
                                 Msg("DB2", 1, Tuple({3, 30}))};
  // With the first message protected, no shed-able pair remains.
  EXPECT_FALSE(UpdateQueue::CoalesceOldestIn(&q, /*skip=*/1));
  EXPECT_EQ(q.size(), 3u);
  // Unprotected, the DB1 pair merges.
  EXPECT_TRUE(UpdateQueue::CoalesceOldestIn(&q, /*skip=*/0));
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q[0].source, "DB1");
  EXPECT_EQ(q[0].seq, 2u);
  EXPECT_EQ(q[1].source, "DB2");
}

TEST(AnnotateStalenessTest, MaterializedLagVirtualZeroAndDownFlags) {
  std::vector<std::string> names = {"DB1", "DB2", "DB3"};
  std::vector<ContributorKind> kinds = {ContributorKind::kMaterialized,
                                        ContributorKind::kVirtual,
                                        ContributorKind::kHybrid};
  TimeVector reflect = {5.0, 2.0, 12.0};
  std::vector<SourceStaleness> ann =
      AnnotateStaleness(names, kinds, reflect, /*now=*/12.0,
                        {true, false, false});
  ASSERT_EQ(ann.size(), 3u);
  EXPECT_EQ(ann[0].source, "DB1");
  EXPECT_DOUBLE_EQ(ann[0].staleness, 7.0);
  EXPECT_TRUE(ann[0].down);
  // Virtual contributors have no materialized state to be stale.
  EXPECT_DOUBLE_EQ(ann[1].staleness, 0.0);
  EXPECT_FALSE(ann[1].down);
  // Hybrid at reflect == now: clamped to zero, never negative.
  EXPECT_DOUBLE_EQ(ann[2].staleness, 0.0);
}

TEST(AnnotateStalenessTest, EmptyDownVectorMeansAllUp) {
  std::vector<SourceStaleness> ann = AnnotateStaleness(
      {"DB1"}, {ContributorKind::kMaterialized}, {1.0}, 4.0);
  ASSERT_EQ(ann.size(), 1u);
  EXPECT_DOUBLE_EQ(ann[0].staleness, 3.0);
  EXPECT_FALSE(ann[0].down);
}

}  // namespace
}  // namespace squirrel
