// Unit tests for the smaller mediator components: LocalStore, UpdateQueue,
// contributor classification, freshness bounds, and ViewQuery parsing.

#include <gtest/gtest.h>

#include "mediator/contributor.h"
#include "mediator/freshness.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/query.h"
#include "mediator/update_queue.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

class LocalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    vdp_ = std::move(vdp).value();
  }
  Vdp vdp_;
};

TEST_F(LocalStoreTest, FullyMaterializedHasAllRepos) {
  Annotation ann;
  LocalStore store(&vdp_, &ann);
  EXPECT_TRUE(store.HasRepo("R'"));
  EXPECT_TRUE(store.HasRepo("S'"));
  EXPECT_TRUE(store.HasRepo("T"));
  EXPECT_FALSE(store.HasRepo("R"));  // leaves never have repos
  EXPECT_EQ(store.MaterializedNodes().size(), 3u);
}

TEST_F(LocalStoreTest, VirtualNodesHaveNoRepo) {
  Annotation ann = AnnotationExample23(vdp_);
  LocalStore store(&vdp_, &ann);
  EXPECT_FALSE(store.HasRepo("R'"));
  EXPECT_FALSE(store.HasRepo("S'"));
  EXPECT_TRUE(store.HasRepo("T"));
  // Hybrid repo schema holds only the materialized attrs.
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, store.Repo("T"));
  EXPECT_EQ(t->schema().AttributeNames(),
            (std::vector<std::string>{"r1", "s1"}));
  EXPECT_FALSE(store.Repo("R'").ok());
}

TEST_F(LocalStoreTest, ApplyNodeDeltaNarrowsToMaterialized) {
  Annotation ann = AnnotationExample23(vdp_);
  LocalStore store(&vdp_, &ann);
  Delta full(vdp_.Find("T")->schema);
  SQ_ASSERT_OK(full.AddInsert(Tuple({1, 11, 100, 5})));
  SQ_ASSERT_OK(store.ApplyNodeDelta("T", full));
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t, store.Repo("T"));
  EXPECT_TRUE(t->Contains(Tuple({1, 100})));
}

TEST_F(LocalStoreTest, AdvisesAndMaintainsJoinIndexes) {
  Annotation ann;  // fully materialized
  LocalStore store(&vdp_, &ann);
  ASSERT_TRUE(store.indexes_enabled());
  // T = R' join[r2 = s1] S': the advisor must keep equi indexes on both
  // join sides.
  const HashIndex* r_idx = store.indexes().Find("R'", {"r2"});
  const HashIndex* s_idx = store.indexes().Find("S'", {"s1"});
  ASSERT_NE(r_idx, nullptr);
  ASSERT_NE(s_idx, nullptr);
  EXPECT_EQ(s_idx->EntryCount(), 0u);

  // ApplyNodeDelta keeps the index mirroring the repository.
  Delta ins(vdp_.Find("S'")->schema);
  SQ_ASSERT_OK(ins.AddInsert(Tuple({100, 5})));
  SQ_ASSERT_OK(store.ApplyNodeDelta("S'", ins));
  EXPECT_EQ(s_idx->EntryCount(), 1u);
  EXPECT_EQ(s_idx->Probe(Tuple({100}))[0].first, Tuple({100, 5}));
  Delta del(vdp_.Find("S'")->schema);
  SQ_ASSERT_OK(del.AddDelete(Tuple({100, 5})));
  SQ_ASSERT_OK(store.ApplyNodeDelta("S'", del));
  EXPECT_EQ(s_idx->EntryCount(), 0u);

  // SetRepo rebuilds from scratch.
  Relation fresh(vdp_.Find("S'")->schema, Semantics::kBag);
  SQ_ASSERT_OK(fresh.Insert(Tuple({200, 6}), 1));
  SQ_ASSERT_OK(store.SetRepo("S'", std::move(fresh)));
  EXPECT_EQ(store.indexes().Find("S'", {"s1"})->EntryCount(), 1u);

  // An index-disabled store keeps none of this machinery.
  LocalStore off(&vdp_, &ann, /*enable_indexes=*/false);
  EXPECT_FALSE(off.indexes_enabled());
  EXPECT_EQ(off.indexes().BuiltCount(), 0u);
}

TEST_F(LocalStoreTest, SetRepoValidatesSchema) {
  Annotation ann;
  LocalStore store(&vdp_, &ann);
  Relation wrong(MakeSchema("X(a)"), Semantics::kBag);
  EXPECT_FALSE(store.SetRepo("T", wrong).ok());
  EXPECT_FALSE(store.SetRepo("NoSuchNode", wrong).ok());
}

TEST(UpdateQueueTest, FifoFlush) {
  UpdateQueue queue;
  for (int i = 0; i < 3; ++i) {
    UpdateMessage msg;
    msg.source = "DB";
    msg.send_time = i;
    msg.seq = i;
    queue.Enqueue(std::move(msg));
  }
  EXPECT_EQ(queue.Size(), 3u);
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].seq, 0u);
  EXPECT_EQ(msgs[2].seq, 2u);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.TotalEnqueued(), 3u);
}

TEST(UpdateQueueTest, PendingFromSmashesPerSource) {
  UpdateQueue queue;
  Schema schema = MakeSchema("R(a)");
  auto enqueue = [&](const std::string& source, const Tuple& t, int sign) {
    UpdateMessage msg;
    msg.source = source;
    SQ_EXPECT_OK(msg.delta.Mutable("R", schema)->Add(t, sign));
    queue.Enqueue(std::move(msg));
  };
  enqueue("A", Tuple({1}), 1);
  enqueue("B", Tuple({2}), 1);
  enqueue("A", Tuple({1}), -1);  // cancels for A
  enqueue("A", Tuple({3}), 1);
  SQ_ASSERT_OK_AND_ASSIGN(MultiDelta a, queue.PendingFrom("A"));
  const Delta* da = a.Find("R");
  ASSERT_NE(da, nullptr);
  EXPECT_EQ(da->CountOf(Tuple({1})), 0);
  EXPECT_EQ(da->CountOf(Tuple({3})), 1);
  SQ_ASSERT_OK_AND_ASSIGN(MultiDelta c, queue.PendingFrom("C"));
  EXPECT_TRUE(c.Empty());
}

TEST(UpdateQueueTest, LastPendingSendTime) {
  UpdateQueue queue;
  UpdateMessage m1;
  m1.source = "A";
  m1.send_time = 1.5;
  queue.Enqueue(std::move(m1));
  UpdateMessage m2;
  m2.source = "A";
  m2.send_time = 4.5;
  queue.Enqueue(std::move(m2));
  EXPECT_DOUBLE_EQ(queue.LastPendingSendTime("A", 0), 4.5);
  EXPECT_DOUBLE_EQ(queue.LastPendingSendTime("B", 9.0), 9.0);
}

TEST(UpdateQueueTest, RequeuePutsMessagesBackInFront) {
  UpdateQueue queue;
  auto make = [](const std::string& source, uint64_t seq) {
    UpdateMessage msg;
    msg.source = source;
    msg.seq = seq;
    return msg;
  };
  queue.Enqueue(make("A", 1));
  queue.Enqueue(make("A", 2));
  auto flushed = queue.Flush();
  ASSERT_EQ(flushed.size(), 2u);
  // A new announcement arrives while the (to-be-aborted) txn is in flight.
  queue.Enqueue(make("A", 3));
  queue.Requeue(std::move(flushed));
  EXPECT_EQ(queue.TotalRequeued(), 2u);
  // The requeued messages are older: per-source FIFO order must survive.
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].seq, 1u);
  EXPECT_EQ(msgs[1].seq, 2u);
  EXPECT_EQ(msgs[2].seq, 3u);
  EXPECT_EQ(queue.TotalEnqueued(), 3u);  // requeues are not new arrivals
}

TEST(UpdateQueueTest, CoalescesSameSourceWithinWindow) {
  UpdateQueue queue;
  queue.SetCoalesceWindow(1.0);
  Schema schema = MakeSchema("R(a)");
  auto make = [&](const std::string& source, Time send_time, uint64_t seq,
                  const Tuple& t, int sign) {
    UpdateMessage msg;
    msg.source = source;
    msg.send_time = send_time;
    msg.seq = seq;
    SQ_EXPECT_OK(msg.delta.Mutable("R", schema)->Add(t, sign));
    return msg;
  };
  queue.Enqueue(make("A", 0.0, 1, Tuple({1}), 1));
  EXPECT_TRUE(queue.WouldCoalesce(make("A", 0.5, 2, Tuple({2}), 1)));
  queue.Enqueue(make("A", 0.5, 2, Tuple({2}), 1));  // merges into tail
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.TotalCoalesced(), 1u);
  EXPECT_EQ(queue.TotalEnqueued(), 2u);  // arrival counters still count both
  // Different source breaks the run; outside the window breaks it too.
  EXPECT_FALSE(queue.WouldCoalesce(make("B", 0.6, 1, Tuple({3}), 1)));
  queue.Enqueue(make("B", 0.6, 1, Tuple({3}), 1));
  EXPECT_FALSE(queue.WouldCoalesce(make("B", 5.0, 2, Tuple({4}), 1)));
  queue.Enqueue(make("B", 5.0, 2, Tuple({4}), 1));
  EXPECT_EQ(queue.Size(), 3u);
  // The merged tail carries the later seq/send_time and the smashed delta.
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].source, "A");
  EXPECT_EQ(msgs[0].seq, 2u);
  EXPECT_DOUBLE_EQ(msgs[0].send_time, 0.5);
  const Delta* da = msgs[0].delta.Find("R");
  ASSERT_NE(da, nullptr);
  EXPECT_EQ(da->CountOf(Tuple({1})), 1);
  EXPECT_EQ(da->CountOf(Tuple({2})), 1);
}

// Regression: a restarted source's first post-hello announcement used to
// merge into a pre-restart tail still sitting in the queue (same source,
// inside the window). The merged message took the NEW epoch while carrying
// pre-restart atoms, so the per-epoch seq dedup floor — which the restart
// hello resets — treated the whole thing as already-delivered new-epoch
// traffic and dropped it. Coalescing must refuse across epoch boundaries.
TEST(UpdateQueueTest, NeverCoalescesAcrossEpochBoundary) {
  UpdateQueue queue;
  queue.SetCoalesceWindow(5.0);
  Schema schema = MakeSchema("R(a)");
  auto make = [&](Time send_time, uint64_t seq, uint64_t epoch,
                  const Tuple& t) {
    UpdateMessage msg;
    msg.source = "A";
    msg.send_time = send_time;
    msg.seq = seq;
    msg.epoch = epoch;
    SQ_EXPECT_OK(msg.delta.Mutable("R", schema)->Add(t, 1));
    return msg;
  };
  queue.Enqueue(make(0.0, 7, 1, Tuple({1})));
  // Same source, well inside the window — but a NEW incarnation. The
  // restarted announcer numbers from seq 1 again; merging would stamp the
  // old atoms with epoch 2 / seq 1.
  UpdateMessage hello = make(0.5, 1, 2, Tuple({2}));
  EXPECT_FALSE(queue.WouldCoalesce(hello));
  queue.Enqueue(std::move(hello));
  ASSERT_EQ(queue.Size(), 2u);
  EXPECT_EQ(queue.TotalCoalesced(), 0u);
  // Within the new epoch, coalescing resumes normally.
  EXPECT_TRUE(queue.WouldCoalesce(make(0.9, 2, 2, Tuple({3}))));
  queue.Enqueue(make(0.9, 2, 2, Tuple({3})));
  EXPECT_EQ(queue.Size(), 2u);
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].epoch, 1u);
  EXPECT_EQ(msgs[0].seq, 7u);
  EXPECT_EQ(msgs[1].epoch, 2u);
  EXPECT_EQ(msgs[1].seq, 2u);
}

// Regression: the backpressure shed (CoalesceOldest) had the same hole —
// under resync pressure it could merge a pre-restart message forward into a
// post-restart one from the same source, destroying the epoch boundary the
// resync machinery keys its dedup floor on. The shed must skip cross-epoch
// pairs even when that means the queue cannot shrink.
TEST(UpdateQueueTest, BackpressureShedRespectsEpochBoundary) {
  UpdateQueue queue;
  Schema schema = MakeSchema("R(a)");
  auto make = [&](const std::string& source, uint64_t seq, uint64_t epoch,
                  const Tuple& t) {
    UpdateMessage msg;
    msg.source = source;
    msg.send_time = 0.1 * seq;
    msg.seq = seq;
    msg.epoch = epoch;
    SQ_EXPECT_OK(msg.delta.Mutable("R", schema)->Add(t, 1));
    return msg;
  };
  // Two same-source messages straddling a restart: NOT shed-mergeable.
  queue.Enqueue(make("A", 5, 1, Tuple({1})));
  queue.Enqueue(make("A", 1, 2, Tuple({2})));
  EXPECT_FALSE(queue.CanCoalesceOldest());
  EXPECT_FALSE(queue.CoalesceOldest());
  EXPECT_EQ(queue.Size(), 2u);
  // A same-epoch pair from another source IS still sheddable, and the shed
  // picks it while leaving the cross-epoch pair alone.
  queue.Enqueue(make("B", 1, 1, Tuple({3})));
  queue.Enqueue(make("B", 2, 1, Tuple({4})));
  EXPECT_TRUE(queue.CanCoalesceOldest());
  EXPECT_TRUE(queue.CoalesceOldest());
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 3u);
  EXPECT_EQ(msgs[0].source, "A");
  EXPECT_EQ(msgs[0].epoch, 1u);
  EXPECT_EQ(msgs[1].source, "A");
  EXPECT_EQ(msgs[1].epoch, 2u);
  EXPECT_EQ(msgs[2].source, "B");
  const Delta* db = msgs[2].delta.Find("R");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->CountOf(Tuple({3})), 1);
  EXPECT_EQ(db->CountOf(Tuple({4})), 1);
}

TEST(UpdateQueueTest, CoalescingCancelsOpposingAtoms) {
  UpdateQueue queue;
  queue.SetCoalesceWindow(2.0);
  Schema schema = MakeSchema("R(a)");
  auto make = [&](Time send_time, uint64_t seq, int sign) {
    UpdateMessage msg;
    msg.source = "A";
    msg.send_time = send_time;
    msg.seq = seq;
    SQ_EXPECT_OK(msg.delta.Mutable("R", schema)->Add(Tuple({7}), sign));
    return msg;
  };
  queue.Enqueue(make(0.0, 1, 1));
  queue.Enqueue(make(0.5, 2, -1));  // insert+delete cancel in the tail
  EXPECT_EQ(queue.Size(), 1u);
  auto msgs = queue.Flush();
  ASSERT_EQ(msgs.size(), 1u);
  // The cancelled atoms net to an empty delta, which reads as "untouched".
  EXPECT_TRUE(msgs[0].delta.Empty());
  EXPECT_EQ(msgs[0].delta.Find("R"), nullptr);
}

TEST(UpdateQueueTest, ZeroWindowNeverCoalesces) {
  UpdateQueue queue;  // default window = 0
  UpdateMessage m1;
  m1.source = "A";
  m1.send_time = 0.0;
  UpdateMessage m2;
  m2.source = "A";
  m2.send_time = 0.0;
  EXPECT_FALSE(queue.WouldCoalesce(m1));
  queue.Enqueue(std::move(m1));
  EXPECT_FALSE(queue.WouldCoalesce(m2));
  queue.Enqueue(std::move(m2));
  EXPECT_EQ(queue.Size(), 2u);
  EXPECT_EQ(queue.TotalCoalesced(), 0u);
}

TEST(IupStatsTest, MergeAccumulatesEveryField) {
  IupStats a;
  a.rules_fired = 1;
  a.atoms_in = 2;
  a.atoms_propagated = 3;
  a.nodes_processed = 4;
  a.polls = 5;
  a.polled_tuples = 6;
  a.temps_built = 7;
  a.poll_retries = 8;
  IupStats b = a;
  b.Merge(a);
  EXPECT_EQ(b.rules_fired, 2u);
  EXPECT_EQ(b.atoms_in, 4u);
  EXPECT_EQ(b.atoms_propagated, 6u);
  EXPECT_EQ(b.nodes_processed, 8u);
  EXPECT_EQ(b.polls, 10u);
  EXPECT_EQ(b.polled_tuples, 12u);
  EXPECT_EQ(b.temps_built, 14u);
  EXPECT_EQ(b.poll_retries, 16u);
  // Merging a default-constructed stats is the identity.
  IupStats c = b;
  c.Merge(IupStats{});
  EXPECT_EQ(c.rules_fired, b.rules_fired);
  EXPECT_EQ(c.poll_retries, b.poll_retries);
}

TEST(ContributorTest, Figure1Classifications) {
  auto vdp = BuildFigure1Vdp();
  ASSERT_TRUE(vdp.ok());
  // Fully materialized: both sources feed only materialized nodes.
  Annotation mat;
  EXPECT_EQ(ClassifyContributor(*vdp, mat, "DB1"),
            ContributorKind::kMaterialized);
  // Example 2.2: R' virtual but T (fed by DB1) materialized -> hybrid.
  Annotation ex22 = AnnotationExample22(*vdp);
  EXPECT_EQ(ClassifyContributor(*vdp, ex22, "DB1"),
            ContributorKind::kHybrid);
  EXPECT_EQ(ClassifyContributor(*vdp, ex22, "DB2"),
            ContributorKind::kMaterialized);
  // Fully virtual everything: both sources virtual-contributors.
  Annotation virt;
  for (const auto& name : vdp->DerivedNames()) {
    SQ_ASSERT_OK(virt.SetAll(*vdp, name, AttrMode::kVirtual));
  }
  EXPECT_EQ(ClassifyContributor(*vdp, virt, "DB1"),
            ContributorKind::kVirtual);
  // Unknown source feeds nothing -> virtual by convention.
  EXPECT_EQ(ClassifyContributor(*vdp, mat, "Unknown"),
            ContributorKind::kVirtual);
}

TEST(ContributorTest, Predicates) {
  EXPECT_TRUE(MustAnnounce(ContributorKind::kMaterialized));
  EXPECT_TRUE(MustAnnounce(ContributorKind::kHybrid));
  EXPECT_FALSE(MustAnnounce(ContributorKind::kVirtual));
  EXPECT_FALSE(MustAnswerPolls(ContributorKind::kMaterialized));
  EXPECT_TRUE(MustAnswerPolls(ContributorKind::kHybrid));
  EXPECT_TRUE(MustAnswerPolls(ContributorKind::kVirtual));
}

TEST(FreshnessBoundTest, Theorem72Formula) {
  std::vector<DelayProfile> profiles = {{2.0, 1.0, 0.5}, {0.0, 0.5, 0.25}};
  MediatorDelays med{3.0, 0.2, 0.1};
  std::vector<ContributorKind> kinds = {ContributorKind::kHybrid,
                                        ContributorKind::kVirtual};
  std::vector<Time> f = FreshnessBound(profiles, med, kinds);
  // poll_term = (0.5 + 2*1.0) + (0.25 + 2*0.5) = 2.5 + 1.25 = 3.75.
  // f_0 (hybrid)  = 2 + 1 + 3 + 0.2 + 3.75 = 9.95
  // f_1 (virtual) = 3.75 + 0.1 = 3.85
  EXPECT_NEAR(f[0], 9.95, 1e-9);
  EXPECT_NEAR(f[1], 3.85, 1e-9);
}

TEST(ViewQueryTest, ParseForms) {
  SQ_ASSERT_OK_AND_ASSIGN(ViewQuery q1, ParseViewQuery("T"));
  EXPECT_EQ(q1.relation, "T");
  EXPECT_TRUE(q1.attrs.empty());
  EXPECT_EQ(q1.cond, nullptr);

  SQ_ASSERT_OK_AND_ASSIGN(ViewQuery q2,
                          ParseViewQuery("project[a, b](T)"));
  EXPECT_EQ(q2.attrs, (std::vector<std::string>{"a", "b"}));

  SQ_ASSERT_OK_AND_ASSIGN(
      ViewQuery q3, ParseViewQuery("project[a](select[b < 3](T))"));
  EXPECT_EQ(q3.relation, "T");
  ASSERT_NE(q3.cond, nullptr);
  EXPECT_FALSE(q3.cond->IsTrueLiteral());

  // Joins are not single-relation view queries.
  EXPECT_FALSE(ParseViewQuery("A join B").ok());
  // Select over project is not the canonical nesting.
  EXPECT_FALSE(ParseViewQuery("select[a = 1](project[a](T))").ok());
}

TEST(ViewQueryTest, ToStringRoundTrips) {
  SQ_ASSERT_OK_AND_ASSIGN(
      ViewQuery q, ParseViewQuery("project[r3, s1](select[r3 < 100](T))"));
  SQ_ASSERT_OK_AND_ASSIGN(ViewQuery again, ParseViewQuery(q.ToString()));
  EXPECT_EQ(again.relation, q.relation);
  EXPECT_EQ(again.attrs, q.attrs);
}

}  // namespace
}  // namespace squirrel
