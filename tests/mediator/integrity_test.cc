// Negative-path tests for the storage integrity layer: CRC32C vectors, frame
// verification under truncation and bit flips, the HardState codec fuzzed at
// every offset (decode must error or round-trip — never crash, and under a
// checksummed frame a flipped bit can never masquerade as success), wire
// checksum sensitivity, and the lying-disk decorator's fault surface as seen
// by DurabilityManager::Recover (tail repair, generation fallback, typed
// kCorrupted refusal).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mediator/durability/durability.h"
#include "mediator/durability/faulty_log_device.h"
#include "mediator/durability/integrity.h"
#include "mediator/durability/log_device.h"
#include "mediator/durability/serialize.h"
#include "relational/parser.h"

namespace squirrel {
namespace {

Schema TestSchema(const std::string& decl) {
  auto parsed = ParseSchemaDecl(decl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->schema;
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4 et al.).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SeededComputationIsIncremental) {
  const std::string all = "the quick brown fox jumps over the lazy dog";
  for (size_t cut = 0; cut <= all.size(); ++cut) {
    uint32_t first = Crc32c(all.data(), cut);
    uint32_t chained = Crc32c(all.data() + cut, all.size() - cut, first);
    EXPECT_EQ(chained, Crc32c(all)) << "cut " << cut;
  }
}

TEST(FrameTest, RoundTripBothClasses) {
  for (FrameClass cls : {FrameClass::kRecord, FrameClass::kCheckpoint}) {
    std::string framed = FrameRecord(cls, /*log_epoch=*/42, "payload bytes");
    EXPECT_EQ(PeekFrameClass(framed), cls);
    FrameInfo info = UnframeRecord(framed);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.frame_class, cls);
    EXPECT_EQ(info.log_epoch, 42u);
    EXPECT_EQ(info.payload, "payload bytes");
  }
  // Empty payloads frame and verify too (abort/shed records are tiny).
  FrameInfo empty = UnframeRecord(FrameRecord(FrameClass::kRecord, 1, ""));
  EXPECT_TRUE(empty.valid);
  EXPECT_EQ(empty.payload, "");
}

TEST(FrameTest, EveryTruncationIsInvalid) {
  std::string framed = FrameRecord(FrameClass::kRecord, 7, "some payload");
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    FrameInfo info = UnframeRecord(framed.substr(0, cut));
    EXPECT_FALSE(info.valid) << "prefix length " << cut;
  }
  // Trailing garbage is also not a valid frame (length mismatch).
  EXPECT_FALSE(UnframeRecord(framed + "x").valid);
}

TEST(FrameTest, EverySingleBitFlipIsDetected) {
  std::string framed = FrameRecord(FrameClass::kCheckpoint, 3, "abcdef");
  for (size_t bit = 0; bit < framed.size() * 8; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameInfo info = UnframeRecord(damaged);
    EXPECT_FALSE(info.valid) << "bit " << bit;
    if (bit >= 32) {
      // A flip OUTSIDE the magic word leaves the class identifiable — the
      // property generation fallback relies on.
      EXPECT_EQ(info.frame_class, FrameClass::kCheckpoint) << "bit " << bit;
      EXPECT_EQ(PeekFrameClass(damaged), FrameClass::kCheckpoint);
    }
  }
}

TEST(FrameTest, ComplementMagicsNeverConfuseClasses) {
  // One flipped magic bit must yield kUnknown, not the OTHER class: the two
  // magic words are bitwise complements, 32 flips apart.
  std::string framed = FrameRecord(FrameClass::kRecord, 1, "x");
  for (size_t bit = 0; bit < 32; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_EQ(PeekFrameClass(damaged), FrameClass::kUnknown) << "bit " << bit;
  }
}

HardState FuzzState() {
  HardState hs;
  Relation t(TestSchema("T(r1, s1)"), Semantics::kBag);
  EXPECT_TRUE(t.Insert(Tuple({1, 100}), 2).ok());
  hs.repos.emplace("T", std::move(t));
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 3.125;
  msg.seq = 7;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({5}))
                  .ok());
  hs.queue.push_back(std::move(msg));
  hs.sources["DB1"] = {7, 3.125, false};
  Relation mirror(TestSchema("R(a)"), Semantics::kBag);
  EXPECT_TRUE(mirror.Insert(Tuple({5})).ok());
  hs.mirrors["DB1"].emplace("R", std::move(mirror));
  hs.next_txn_id = 9;
  hs.next_resync_id = 3;
  return hs;
}

TEST(HardStateFuzzTest, TruncationAtEveryOffsetFailsCleanly) {
  std::string bytes = FuzzState().Encode();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto back = HardState::Decode(bytes.substr(0, cut));
    EXPECT_FALSE(back.ok()) << "prefix length " << cut;
  }
}

TEST(HardStateFuzzTest, BitFlipAtEveryOffsetNeverCrashes) {
  // The raw codec may accept a flip that lands in a value (a different but
  // well-formed state) — that is exactly why checkpoints are framed. The
  // codec's own contract: never crash, never read out of bounds, and any
  // accepted decode must be a deterministic fixed point of the codec.
  std::string bytes = FuzzState().Encode();
  Rng rng(20260809);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;  // flip cancelled (paranoia)
    auto back = HardState::Decode(damaged);
    if (back.ok()) {
      std::string re = back->Encode();
      auto again = HardState::Decode(re);
      ASSERT_TRUE(again.ok()) << "offset " << off;
      EXPECT_EQ(again->Encode(), re) << "offset " << off;
    }
  }
}

TEST(HardStateFuzzTest, FramedCheckpointRejectsEveryBitFlip) {
  // Same sweep through the integrity layer: under a frame there is no
  // "plausible but wrong" decode — every flip is caught by the CRC.
  std::string framed =
      FrameRecord(FrameClass::kCheckpoint, 5, FuzzState().Encode());
  Rng rng(20260810);
  for (size_t off = 0; off < framed.size(); ++off) {
    std::string damaged = framed;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == framed[off]) continue;
    EXPECT_FALSE(UnframeRecord(damaged).valid) << "offset " << off;
  }
}

TEST(WireChecksumTest, UpdateMessageSensitivity) {
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 1.5;
  msg.seq = 3;
  msg.epoch = 2;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({1}))
                  .ok());
  uint32_t base = ChecksumUpdateMessage(msg);
  // The checksum field itself is excluded — stamping must not invalidate.
  msg.checksum = base;
  EXPECT_EQ(ChecksumUpdateMessage(msg), base);
  UpdateMessage other = msg;
  other.seq = 4;
  EXPECT_NE(ChecksumUpdateMessage(other), base);
  other = msg;
  other.source = "DB2";
  EXPECT_NE(ChecksumUpdateMessage(other), base);
  other = msg;
  EXPECT_TRUE(other.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({2}))
                  .ok());
  EXPECT_NE(ChecksumUpdateMessage(other), base);
}

TEST(WireChecksumTest, SnapshotAnswerSensitivity) {
  SnapshotAnswer ans;
  ans.id = 1;
  ans.source = "DB1";
  ans.answered_at = 9.0;
  ans.epoch = 2;
  ans.announce_seq = 5;
  Relation r(TestSchema("R(a)"), Semantics::kBag);
  EXPECT_TRUE(r.Insert(Tuple({1})).ok());
  ans.relations.emplace("R", std::move(r));
  uint32_t base = ChecksumSnapshotAnswer(ans);
  ans.checksum = base;
  EXPECT_EQ(ChecksumSnapshotAnswer(ans), base);  // field excluded
  SnapshotAnswer other = ans;
  other.announce_seq = 6;
  EXPECT_NE(ChecksumSnapshotAnswer(other), base);
  other = ans;
  EXPECT_TRUE(other.relations.at("R").Insert(Tuple({2})).ok());
  EXPECT_NE(ChecksumSnapshotAnswer(other), base);
}

// A wire message with every field off its default and a multi-relation,
// multi-op payload, so the fuzz sweeps cross every codec branch
// (UpdateMessage → MultiDelta → Delta → Tuple → Value, plus Schema).
UpdateMessage FuzzMessage() {
  UpdateMessage msg;
  msg.source = "DB2";
  msg.send_time = 12.375;
  msg.seq = 41;
  msg.epoch = 3;
  Delta* r = msg.delta.Mutable("R", TestSchema("R(a, b)"));
  EXPECT_TRUE(r->AddInsert(Tuple({1, 10})).ok());
  EXPECT_TRUE(r->AddInsert(Tuple({2, 20})).ok());
  EXPECT_TRUE(r->AddDelete(Tuple({3, 30})).ok());
  Delta* s = msg.delta.Mutable("S", TestSchema("S(x)"));
  EXPECT_TRUE(s->AddDelete(Tuple({-7})).ok());
  return msg;
}

TEST(WireCodecFuzzTest, UpdateMessageTruncationAtEveryOffsetFailsCleanly) {
  BinaryWriter w;
  EncodeUpdateMessage(&w, FuzzMessage());
  const std::string bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string prefix = bytes.substr(0, cut);
    BinaryReader r(prefix);
    auto back = DecodeUpdateMessage(&r);
    // A strict prefix can never decode AND consume every byte: the codec
    // either errors or stops early, so framed receipt paths detect the cut.
    EXPECT_TRUE(!back.ok() || !r.AtEnd()) << "prefix length " << cut;
  }
}

TEST(WireCodecFuzzTest, UpdateMessageBitFlipNeverCrashesOrPassesChecksum) {
  // The receipt-path contract under one flipped wire bit: the decoder must
  // never crash or read out of bounds, and whatever it does accept must be
  // caught downstream — either trailing bytes are left over (framing-length
  // mismatch) or the decoded message no longer matches the sender-stamped
  // CRC32C. A flip that survives decode AND checksum would be a silent
  // payload corruption, the exact hole ChecksumUpdateMessage closes.
  const UpdateMessage original = FuzzMessage();
  const uint32_t stamped = ChecksumUpdateMessage(original);
  BinaryWriter w;
  EncodeUpdateMessage(&w, original);
  const std::string bytes = w.bytes();
  Rng rng(20260811);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;  // flip cancelled (paranoia)
    BinaryReader r(damaged);
    auto back = DecodeUpdateMessage(&r);
    if (!back.ok()) continue;  // clean typed refusal
    EXPECT_TRUE(!r.AtEnd() || ChecksumUpdateMessage(*back) != stamped)
        << "offset " << off << ": a flipped bit decoded cleanly and still "
        << "matched the sender's checksum";
  }
}

TEST(WireCodecFuzzTest, RelationBitFlipDecodeIsFixedPointOrRefusal) {
  // Same sweep over the snapshot-payload codec: any accepted decode must be
  // a deterministic fixed point (re-encode → decode → re-encode stable), so
  // a damaged snapshot can never oscillate through the checksum layer.
  Relation rel(TestSchema("R(a, b, c)"), Semantics::kBag);
  ASSERT_TRUE(rel.Insert(Tuple({1, 2, 3}), 2).ok());
  ASSERT_TRUE(rel.Insert(Tuple({-4, 0, 9}), 1).ok());
  BinaryWriter w;
  EncodeRelation(&w, rel);
  const std::string bytes = w.bytes();
  Rng rng(20260812);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;
    BinaryReader r(damaged);
    auto back = DecodeRelation(&r);
    if (!back.ok()) continue;
    BinaryWriter re;
    EncodeRelation(&re, *back);
    BinaryReader r2(re.bytes());
    auto again = DecodeRelation(&r2);
    ASSERT_TRUE(again.ok()) << "offset " << off;
    BinaryWriter re2;
    EncodeRelation(&re2, *again);
    EXPECT_EQ(re2.bytes(), re.bytes()) << "offset " << off;
  }
}

// A poll request with every overload-protection field off its default
// (deadline, query class) plus per-poll conditions, and a poll answer
// carrying a retry-after rejection hint — so the fuzz sweeps cross the new
// wire fields introduced for deadline propagation.
PollRequest FuzzPollRequest() {
  PollRequest req;
  req.id = 91;
  req.deadline = 87.625;
  req.qclass = QueryClass::kBatch;
  PollSpec p1;
  p1.relation = "R";
  p1.attrs = {"a", "b"};
  auto cond = ParsePredicate("a < 10");
  EXPECT_TRUE(cond.ok());
  p1.cond = *cond;
  req.polls.push_back(std::move(p1));
  PollSpec p2;
  p2.relation = "S";
  p2.attrs = {"x"};
  req.polls.push_back(std::move(p2));
  return req;
}

PollAnswer FuzzPollAnswer() {
  PollAnswer ans;
  ans.id = 91;
  ans.source = "DB2";
  ans.answered_at = 41.5;
  ans.epoch = 4;
  ans.retry_after = 52.25;
  Relation r(TestSchema("R(a, b)"), Semantics::kBag);
  EXPECT_TRUE(r.Insert(Tuple({1, 2}), 2).ok());
  ans.results.push_back(std::move(r));
  return ans;
}

TEST(WireCodecFuzzTest, PollRequestTruncationAtEveryOffsetFailsCleanly) {
  BinaryWriter w;
  EncodePollRequest(&w, FuzzPollRequest());
  const std::string bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string prefix = bytes.substr(0, cut);
    BinaryReader r(prefix);
    auto back = DecodePollRequest(&r);
    EXPECT_TRUE(!back.ok() || !r.AtEnd()) << "prefix length " << cut;
  }
}

TEST(WireCodecFuzzTest, PollRequestBitFlipNeverCrashesDecodeIsFixedPoint) {
  // One flipped bit may hit the deadline (a different but well-formed time),
  // the class byte (out-of-range values are a typed refusal), a count, or
  // the predicate text (re-parsed on decode; garbage is a typed parse
  // error). The contract: never crash, and any accepted decode must be a
  // deterministic fixed point of the codec.
  BinaryWriter w;
  EncodePollRequest(&w, FuzzPollRequest());
  const std::string bytes = w.bytes();
  Rng rng(20260813);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;  // flip cancelled (paranoia)
    BinaryReader r(damaged);
    auto back = DecodePollRequest(&r);
    if (!back.ok()) continue;  // clean typed refusal
    BinaryWriter re;
    EncodePollRequest(&re, *back);
    BinaryReader r2(re.bytes());
    auto again = DecodePollRequest(&r2);
    ASSERT_TRUE(again.ok()) << "offset " << off;
    BinaryWriter re2;
    EncodePollRequest(&re2, *again);
    EXPECT_EQ(re2.bytes(), re.bytes()) << "offset " << off;
    // An accepted decode can never smuggle in an out-of-range class.
    EXPECT_LT(static_cast<uint8_t>(back->qclass), kNumQueryClasses)
        << "offset " << off;
  }
}

TEST(WireCodecFuzzTest, PollAnswerTruncationAtEveryOffsetFailsCleanly) {
  BinaryWriter w;
  EncodePollAnswer(&w, FuzzPollAnswer());
  const std::string bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string prefix = bytes.substr(0, cut);
    BinaryReader r(prefix);
    auto back = DecodePollAnswer(&r);
    EXPECT_TRUE(!back.ok() || !r.AtEnd()) << "prefix length " << cut;
  }
}

TEST(WireCodecFuzzTest, PollAnswerBitFlipNeverCrashesDecodeIsFixedPoint) {
  // The retry_after field travels as an IEEE-754 bit pattern: every flip is
  // a different but decodable time, so the fixed-point property is what
  // keeps a damaged rejection hint from oscillating through replays.
  BinaryWriter w;
  EncodePollAnswer(&w, FuzzPollAnswer());
  const std::string bytes = w.bytes();
  Rng rng(20260814);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;
    BinaryReader r(damaged);
    auto back = DecodePollAnswer(&r);
    if (!back.ok()) continue;
    BinaryWriter re;
    EncodePollAnswer(&re, *back);
    BinaryReader r2(re.bytes());
    auto again = DecodePollAnswer(&r2);
    ASSERT_TRUE(again.ok()) << "offset " << off;
    BinaryWriter re2;
    EncodePollAnswer(&re2, *again);
    EXPECT_EQ(re2.bytes(), re.bytes()) << "offset " << off;
  }
}

/// Deterministic corruption for triage tests: flips one byte of chosen LSNs
/// at READ time — the moment recovery looks at the "disk". Flipping at
/// offset 20 (the first payload byte, past magic and crc) guarantees the
/// frame class stays identifiable, which is the scenario each test targets;
/// FaultyLogDevice's seeded flips are exercised by the property sweep.
class ByteFlipDevice : public LogDevice {
 public:
  explicit ByteFlipDevice(LogDevice* inner) : inner_(inner) {}
  void FlipByteAt(uint64_t lsn, size_t offset) { flips_[lsn] = offset; }
  Result<uint64_t> Append(std::string bytes) override {
    return inner_->Append(std::move(bytes));
  }
  Status TruncatePrefix(uint64_t new_begin) override {
    return inner_->TruncatePrefix(new_begin);
  }
  Result<std::vector<LogRecord>> ReadAll() const override {
    SQ_ASSIGN_OR_RETURN(std::vector<LogRecord> records, inner_->ReadAll());
    for (LogRecord& rec : records) {
      auto it = flips_.find(rec.lsn);
      if (it != flips_.end() && it->second < rec.bytes.size()) {
        rec.bytes[it->second] ^= 0x40;
      }
    }
    return records;
  }
  uint64_t NextLsn() const override { return inner_->NextLsn(); }
  uint64_t SizeBytes() const override { return inner_->SizeBytes(); }

 private:
  LogDevice* inner_;
  std::map<uint64_t, size_t> flips_;
};

constexpr size_t kPayloadOffset = 20;  // [magic 4][crc 4][len 4][epoch 8]

UpdateMessage Msg(const std::string& source, uint64_t seq, Time send_time) {
  UpdateMessage msg;
  msg.source = source;
  msg.seq = seq;
  msg.send_time = send_time;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a, b)"))
                  ->AddInsert(Tuple({static_cast<int64_t>(seq), 10}))
                  .ok());
  return msg;
}

DurabilityOptions Opts(LogDevice* dev) {
  DurabilityOptions o;
  o.device = dev;
  o.wal = true;
  o.checkpoint_every = 16;
  return o;
}

TEST(FaultyLogDeviceTest, TornAppendSurfacesAtReadAll) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.torn_append_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/7);
  ASSERT_TRUE(dev.Append("intact record zero").ok());
  ASSERT_TRUE(dev.Append("record one gets torn").ok());
  ASSERT_TRUE(dev.Append("record two intact again").ok());  // budget spent
  EXPECT_EQ(dev.counters().torn, 1u);
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].bytes, "intact record zero");
  EXPECT_LT((*records)[1].bytes.size(),
            std::string("record one gets torn").size());
  EXPECT_TRUE(
      std::string("record one gets torn").rfind((*records)[1].bytes, 0) == 0);
  EXPECT_EQ((*records)[2].bytes, "record two intact again");
}

TEST(FaultyLogDeviceTest, EnospcFailsHonestly) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.enospc_prob = 1.0;
  plan.enospc_len = 2;
  plan.max_faults = 1;
  plan.skip_appends = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/3);
  ASSERT_TRUE(dev.Append("a").ok());
  EXPECT_EQ(dev.Append("b").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.Append("c").status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(dev.Append("d").ok());  // window drained, budget spent
  EXPECT_EQ(dev.counters().enospc_failures, 2u);
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);  // failed appends consumed no LSN
  EXPECT_EQ((*records)[1].bytes, "d");
}

TEST(FaultyLogDeviceTest, LostTruncationResurrectsPreTruncationFile) {
  // The lost-rename window: TruncatePrefix is acked but the rewrite-rename
  // never got its directory fsync. A read-after-crash sees the OLD file —
  // records the truncation "dropped" are back, and every append made after
  // the lie sits on the orphaned inode, invisible. The next clean truncation
  // renames (and dir-fsyncs) again, making the current contents durable.
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.lost_truncation_prob = 1.0;
  plan.max_faults = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/5);
  ASSERT_TRUE(dev.Append("a").ok());
  ASSERT_TRUE(dev.Append("b").ok());
  ASSERT_TRUE(dev.Append("c").ok());
  ASSERT_TRUE(dev.TruncatePrefix(2).ok());  // acked; rename rolled back
  EXPECT_EQ(dev.counters().lost_truncations, 1u);
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);  // "dropped" records resurrected
  EXPECT_EQ((*records)[0].bytes, "a");
  EXPECT_EQ((*records)[2].bytes, "c");
  // An append inside the window is acked but lands on the orphaned inode.
  ASSERT_TRUE(dev.Append("d").ok());
  records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);  // "d" is lost to any read-after-crash
  // A later clean truncation closes the window: the rename + dir fsync make
  // the LATEST contents (including "d") durable.
  ASSERT_TRUE(dev.TruncatePrefix(3).ok());  // budget spent: honest this time
  records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].lsn, 3u);
  EXPECT_EQ((*records)[0].bytes, "d");
}

TEST(RecoveryTriageTest, LostRenameWindowLosesAckedAppendsUntilHealed) {
  // End-to-end shape of the FileLogDevice bug this models: the checkpoint's
  // log truncation is acked but its rename is not directory-durable, so a
  // crash inside the window recovers the PRE-truncation log and every
  // enqueue logged after the lying ack is gone — exactly the silent
  // acked-then-lost case resync_on_recovery exists for. A later checkpoint
  // whose truncation IS durable heals the log.
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.lost_truncation_prob = 1.0;
  plan.max_faults = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/13);
  DurabilityManager mgr(Opts(&dev));
  // The first checkpoint's truncation draws the fault and arms the window.
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  EXPECT_EQ(dev.counters().lost_truncations, 1u);
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());  // acked, orphaned
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // acked, orphaned
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // Recovery read the pre-truncation file: both acked enqueues are lost,
  // and (as with a dropped-fsync tail) there is nothing left to detect.
  EXPECT_EQ(rec->state.queue.size(), 0u);
  // Heal: the next checkpoint truncates honestly (fault budget spent), so
  // the rename + dir fsync finally land and post-heal records are durable.
  HardState hs;
  hs.next_txn_id = 5;
  ASSERT_TRUE(mgr.WriteCheckpoint(hs).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 3, 3.0)).ok());
  auto rec2 = mgr.Recover();
  ASSERT_TRUE(rec2.ok()) << rec2.status().ToString();
  EXPECT_EQ(rec2->state.next_txn_id, 5u);
  ASSERT_EQ(rec2->state.queue.size(), 1u);
  EXPECT_EQ(rec2->state.queue.front().seq, 3u);
}

TEST(RecoveryTriageTest, TornTailIsRepairedAndCounted) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.torn_append_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 2;  // checkpoint (LSN 0) + first enqueue stay intact
  FaultyLogDevice dev(&inner, plan, /*seed=*/11);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // torn on disk
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->tail_records_dropped, 1u);
  EXPECT_TRUE(rec->anomalies());
  ASSERT_EQ(rec->state.queue.size(), 1u);  // the intact enqueue survived
  EXPECT_EQ(rec->state.queue.front().seq, 1u);
}

TEST(RecoveryTriageTest, InteriorCorruptionIsTypedRefusal) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // damaged below
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 3, 3.0)).ok());  // valid AFTER it
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorrupted)
      << rec.status().ToString();
  // The diagnostic names the damaged LSN so an operator can find the spot.
  EXPECT_NE(rec.status().ToString().find("LSN"), std::string::npos)
      << rec.status().ToString();
}

TEST(RecoveryTriageTest, DamagedNewestCheckpointFallsBackAGeneration) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());  // gen 0, intact
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  HardState hs;
  hs.next_txn_id = 5;
  ASSERT_TRUE(mgr.WriteCheckpoint(hs).ok());  // gen 1 at LSN 2, damaged
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->checkpoint_fallbacks, 1u);
  EXPECT_TRUE(rec->anomalies());
  // Recovery replayed the LONGER suffix behind generation 0: both enqueues.
  ASSERT_EQ(rec->state.queue.size(), 2u);
  EXPECT_EQ(rec->state.sources.at("DB1").last_update_seq, 2u);
}

TEST(RecoveryTriageTest, BothGenerationsDamagedIsTypedRefusal) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());    // gen 0 at LSN 0
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());    // gen 1 at LSN 2
  dev.FlipByteAt(0, kPayloadOffset);
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorrupted)
      << rec.status().ToString();
}

TEST(RecoveryTriageTest, FsyncDropOfTailRecordIsTailRepair) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.fsync_drop_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 2;
  FaultyLogDevice dev(&inner, plan, /*seed=*/17);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // acked, then lost
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The record is GONE (not damaged in place), so the detector sees an LSN
  // gap... at the tail, where it is indistinguishable from a quiet log end;
  // the anomaly machinery cannot fire. This is exactly why
  // resync_on_recovery exists — assert the silent case stays silent here.
  EXPECT_EQ(rec->state.queue.size(), 1u);
}

TEST(RecoveryTriageTest, LegacyUnframedLogsStillRecover) {
  // framing=false reads logs written by pre-integrity builds.
  MemLogDevice dev;
  DurabilityOptions o = Opts(&dev);
  o.framing = false;
  DurabilityManager mgr(o);
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->state.queue.size(), 1u);
  EXPECT_EQ(rec->tail_records_dropped, 0u);
}

}  // namespace
}  // namespace squirrel
