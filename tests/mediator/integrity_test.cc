// Negative-path tests for the storage integrity layer: CRC32C vectors, frame
// verification under truncation and bit flips, the HardState codec fuzzed at
// every offset (decode must error or round-trip — never crash, and under a
// checksummed frame a flipped bit can never masquerade as success), wire
// checksum sensitivity, and the lying-disk decorator's fault surface as seen
// by DurabilityManager::Recover (tail repair, generation fallback, typed
// kCorrupted refusal).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mediator/durability/durability.h"
#include "mediator/durability/faulty_log_device.h"
#include "mediator/durability/integrity.h"
#include "mediator/durability/log_device.h"
#include "mediator/durability/serialize.h"
#include "relational/parser.h"

namespace squirrel {
namespace {

Schema TestSchema(const std::string& decl) {
  auto parsed = ParseSchemaDecl(decl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed->schema;
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4 et al.).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, SeededComputationIsIncremental) {
  const std::string all = "the quick brown fox jumps over the lazy dog";
  for (size_t cut = 0; cut <= all.size(); ++cut) {
    uint32_t first = Crc32c(all.data(), cut);
    uint32_t chained = Crc32c(all.data() + cut, all.size() - cut, first);
    EXPECT_EQ(chained, Crc32c(all)) << "cut " << cut;
  }
}

TEST(FrameTest, RoundTripBothClasses) {
  for (FrameClass cls : {FrameClass::kRecord, FrameClass::kCheckpoint}) {
    std::string framed = FrameRecord(cls, /*log_epoch=*/42, "payload bytes");
    EXPECT_EQ(PeekFrameClass(framed), cls);
    FrameInfo info = UnframeRecord(framed);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.frame_class, cls);
    EXPECT_EQ(info.log_epoch, 42u);
    EXPECT_EQ(info.payload, "payload bytes");
  }
  // Empty payloads frame and verify too (abort/shed records are tiny).
  FrameInfo empty = UnframeRecord(FrameRecord(FrameClass::kRecord, 1, ""));
  EXPECT_TRUE(empty.valid);
  EXPECT_EQ(empty.payload, "");
}

TEST(FrameTest, EveryTruncationIsInvalid) {
  std::string framed = FrameRecord(FrameClass::kRecord, 7, "some payload");
  for (size_t cut = 0; cut < framed.size(); ++cut) {
    FrameInfo info = UnframeRecord(framed.substr(0, cut));
    EXPECT_FALSE(info.valid) << "prefix length " << cut;
  }
  // Trailing garbage is also not a valid frame (length mismatch).
  EXPECT_FALSE(UnframeRecord(framed + "x").valid);
}

TEST(FrameTest, EverySingleBitFlipIsDetected) {
  std::string framed = FrameRecord(FrameClass::kCheckpoint, 3, "abcdef");
  for (size_t bit = 0; bit < framed.size() * 8; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    FrameInfo info = UnframeRecord(damaged);
    EXPECT_FALSE(info.valid) << "bit " << bit;
    if (bit >= 32) {
      // A flip OUTSIDE the magic word leaves the class identifiable — the
      // property generation fallback relies on.
      EXPECT_EQ(info.frame_class, FrameClass::kCheckpoint) << "bit " << bit;
      EXPECT_EQ(PeekFrameClass(damaged), FrameClass::kCheckpoint);
    }
  }
}

TEST(FrameTest, ComplementMagicsNeverConfuseClasses) {
  // One flipped magic bit must yield kUnknown, not the OTHER class: the two
  // magic words are bitwise complements, 32 flips apart.
  std::string framed = FrameRecord(FrameClass::kRecord, 1, "x");
  for (size_t bit = 0; bit < 32; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_EQ(PeekFrameClass(damaged), FrameClass::kUnknown) << "bit " << bit;
  }
}

HardState FuzzState() {
  HardState hs;
  Relation t(TestSchema("T(r1, s1)"), Semantics::kBag);
  EXPECT_TRUE(t.Insert(Tuple({1, 100}), 2).ok());
  hs.repos.emplace("T", std::move(t));
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 3.125;
  msg.seq = 7;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({5}))
                  .ok());
  hs.queue.push_back(std::move(msg));
  hs.sources["DB1"] = {7, 3.125, false};
  Relation mirror(TestSchema("R(a)"), Semantics::kBag);
  EXPECT_TRUE(mirror.Insert(Tuple({5})).ok());
  hs.mirrors["DB1"].emplace("R", std::move(mirror));
  hs.next_txn_id = 9;
  hs.next_resync_id = 3;
  return hs;
}

TEST(HardStateFuzzTest, TruncationAtEveryOffsetFailsCleanly) {
  std::string bytes = FuzzState().Encode();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto back = HardState::Decode(bytes.substr(0, cut));
    EXPECT_FALSE(back.ok()) << "prefix length " << cut;
  }
}

TEST(HardStateFuzzTest, BitFlipAtEveryOffsetNeverCrashes) {
  // The raw codec may accept a flip that lands in a value (a different but
  // well-formed state) — that is exactly why checkpoints are framed. The
  // codec's own contract: never crash, never read out of bounds, and any
  // accepted decode must be a deterministic fixed point of the codec.
  std::string bytes = FuzzState().Encode();
  Rng rng(20260809);
  for (size_t off = 0; off < bytes.size(); ++off) {
    std::string damaged = bytes;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == bytes[off]) continue;  // flip cancelled (paranoia)
    auto back = HardState::Decode(damaged);
    if (back.ok()) {
      std::string re = back->Encode();
      auto again = HardState::Decode(re);
      ASSERT_TRUE(again.ok()) << "offset " << off;
      EXPECT_EQ(again->Encode(), re) << "offset " << off;
    }
  }
}

TEST(HardStateFuzzTest, FramedCheckpointRejectsEveryBitFlip) {
  // Same sweep through the integrity layer: under a frame there is no
  // "plausible but wrong" decode — every flip is caught by the CRC.
  std::string framed =
      FrameRecord(FrameClass::kCheckpoint, 5, FuzzState().Encode());
  Rng rng(20260810);
  for (size_t off = 0; off < framed.size(); ++off) {
    std::string damaged = framed;
    damaged[off] ^= static_cast<char>(1u << rng.Uniform(8));
    if (damaged[off] == framed[off]) continue;
    EXPECT_FALSE(UnframeRecord(damaged).valid) << "offset " << off;
  }
}

TEST(WireChecksumTest, UpdateMessageSensitivity) {
  UpdateMessage msg;
  msg.source = "DB1";
  msg.send_time = 1.5;
  msg.seq = 3;
  msg.epoch = 2;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({1}))
                  .ok());
  uint32_t base = ChecksumUpdateMessage(msg);
  // The checksum field itself is excluded — stamping must not invalidate.
  msg.checksum = base;
  EXPECT_EQ(ChecksumUpdateMessage(msg), base);
  UpdateMessage other = msg;
  other.seq = 4;
  EXPECT_NE(ChecksumUpdateMessage(other), base);
  other = msg;
  other.source = "DB2";
  EXPECT_NE(ChecksumUpdateMessage(other), base);
  other = msg;
  EXPECT_TRUE(other.delta.Mutable("R", TestSchema("R(a)"))
                  ->AddInsert(Tuple({2}))
                  .ok());
  EXPECT_NE(ChecksumUpdateMessage(other), base);
}

TEST(WireChecksumTest, SnapshotAnswerSensitivity) {
  SnapshotAnswer ans;
  ans.id = 1;
  ans.source = "DB1";
  ans.answered_at = 9.0;
  ans.epoch = 2;
  ans.announce_seq = 5;
  Relation r(TestSchema("R(a)"), Semantics::kBag);
  EXPECT_TRUE(r.Insert(Tuple({1})).ok());
  ans.relations.emplace("R", std::move(r));
  uint32_t base = ChecksumSnapshotAnswer(ans);
  ans.checksum = base;
  EXPECT_EQ(ChecksumSnapshotAnswer(ans), base);  // field excluded
  SnapshotAnswer other = ans;
  other.announce_seq = 6;
  EXPECT_NE(ChecksumSnapshotAnswer(other), base);
  other = ans;
  EXPECT_TRUE(other.relations.at("R").Insert(Tuple({2})).ok());
  EXPECT_NE(ChecksumSnapshotAnswer(other), base);
}

/// Deterministic corruption for triage tests: flips one byte of chosen LSNs
/// at READ time — the moment recovery looks at the "disk". Flipping at
/// offset 20 (the first payload byte, past magic and crc) guarantees the
/// frame class stays identifiable, which is the scenario each test targets;
/// FaultyLogDevice's seeded flips are exercised by the property sweep.
class ByteFlipDevice : public LogDevice {
 public:
  explicit ByteFlipDevice(LogDevice* inner) : inner_(inner) {}
  void FlipByteAt(uint64_t lsn, size_t offset) { flips_[lsn] = offset; }
  Result<uint64_t> Append(std::string bytes) override {
    return inner_->Append(std::move(bytes));
  }
  Status TruncatePrefix(uint64_t new_begin) override {
    return inner_->TruncatePrefix(new_begin);
  }
  Result<std::vector<LogRecord>> ReadAll() const override {
    SQ_ASSIGN_OR_RETURN(std::vector<LogRecord> records, inner_->ReadAll());
    for (LogRecord& rec : records) {
      auto it = flips_.find(rec.lsn);
      if (it != flips_.end() && it->second < rec.bytes.size()) {
        rec.bytes[it->second] ^= 0x40;
      }
    }
    return records;
  }
  uint64_t NextLsn() const override { return inner_->NextLsn(); }
  uint64_t SizeBytes() const override { return inner_->SizeBytes(); }

 private:
  LogDevice* inner_;
  std::map<uint64_t, size_t> flips_;
};

constexpr size_t kPayloadOffset = 20;  // [magic 4][crc 4][len 4][epoch 8]

UpdateMessage Msg(const std::string& source, uint64_t seq, Time send_time) {
  UpdateMessage msg;
  msg.source = source;
  msg.seq = seq;
  msg.send_time = send_time;
  EXPECT_TRUE(msg.delta.Mutable("R", TestSchema("R(a, b)"))
                  ->AddInsert(Tuple({static_cast<int64_t>(seq), 10}))
                  .ok());
  return msg;
}

DurabilityOptions Opts(LogDevice* dev) {
  DurabilityOptions o;
  o.device = dev;
  o.wal = true;
  o.checkpoint_every = 16;
  return o;
}

TEST(FaultyLogDeviceTest, TornAppendSurfacesAtReadAll) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.torn_append_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/7);
  ASSERT_TRUE(dev.Append("intact record zero").ok());
  ASSERT_TRUE(dev.Append("record one gets torn").ok());
  ASSERT_TRUE(dev.Append("record two intact again").ok());  // budget spent
  EXPECT_EQ(dev.counters().torn, 1u);
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].bytes, "intact record zero");
  EXPECT_LT((*records)[1].bytes.size(),
            std::string("record one gets torn").size());
  EXPECT_TRUE(
      std::string("record one gets torn").rfind((*records)[1].bytes, 0) == 0);
  EXPECT_EQ((*records)[2].bytes, "record two intact again");
}

TEST(FaultyLogDeviceTest, EnospcFailsHonestly) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.enospc_prob = 1.0;
  plan.enospc_len = 2;
  plan.max_faults = 1;
  plan.skip_appends = 1;
  FaultyLogDevice dev(&inner, plan, /*seed=*/3);
  ASSERT_TRUE(dev.Append("a").ok());
  EXPECT_EQ(dev.Append("b").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.Append("c").status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(dev.Append("d").ok());  // window drained, budget spent
  EXPECT_EQ(dev.counters().enospc_failures, 2u);
  auto records = dev.ReadAll();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);  // failed appends consumed no LSN
  EXPECT_EQ((*records)[1].bytes, "d");
}

TEST(RecoveryTriageTest, TornTailIsRepairedAndCounted) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.torn_append_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 2;  // checkpoint (LSN 0) + first enqueue stay intact
  FaultyLogDevice dev(&inner, plan, /*seed=*/11);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // torn on disk
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->tail_records_dropped, 1u);
  EXPECT_TRUE(rec->anomalies());
  ASSERT_EQ(rec->state.queue.size(), 1u);  // the intact enqueue survived
  EXPECT_EQ(rec->state.queue.front().seq, 1u);
}

TEST(RecoveryTriageTest, InteriorCorruptionIsTypedRefusal) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // damaged below
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 3, 3.0)).ok());  // valid AFTER it
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorrupted)
      << rec.status().ToString();
  // The diagnostic names the damaged LSN so an operator can find the spot.
  EXPECT_NE(rec.status().ToString().find("LSN"), std::string::npos)
      << rec.status().ToString();
}

TEST(RecoveryTriageTest, DamagedNewestCheckpointFallsBackAGeneration) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());  // gen 0, intact
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  HardState hs;
  hs.next_txn_id = 5;
  ASSERT_TRUE(mgr.WriteCheckpoint(hs).ok());  // gen 1 at LSN 2, damaged
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->checkpoint_fallbacks, 1u);
  EXPECT_TRUE(rec->anomalies());
  // Recovery replayed the LONGER suffix behind generation 0: both enqueues.
  ASSERT_EQ(rec->state.queue.size(), 2u);
  EXPECT_EQ(rec->state.sources.at("DB1").last_update_seq, 2u);
}

TEST(RecoveryTriageTest, BothGenerationsDamagedIsTypedRefusal) {
  MemLogDevice inner;
  ByteFlipDevice dev(&inner);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());    // gen 0 at LSN 0
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());    // gen 1 at LSN 2
  dev.FlipByteAt(0, kPayloadOffset);
  dev.FlipByteAt(2, kPayloadOffset);
  auto rec = mgr.Recover();
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kCorrupted)
      << rec.status().ToString();
}

TEST(RecoveryTriageTest, FsyncDropOfTailRecordIsTailRepair) {
  MemLogDevice inner;
  StorageFaultPlan plan;
  plan.fsync_drop_prob = 1.0;
  plan.max_faults = 1;
  plan.skip_appends = 2;
  FaultyLogDevice dev(&inner, plan, /*seed=*/17);
  DurabilityManager mgr(Opts(&dev));
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 2, 2.0)).ok());  // acked, then lost
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The record is GONE (not damaged in place), so the detector sees an LSN
  // gap... at the tail, where it is indistinguishable from a quiet log end;
  // the anomaly machinery cannot fire. This is exactly why
  // resync_on_recovery exists — assert the silent case stays silent here.
  EXPECT_EQ(rec->state.queue.size(), 1u);
}

TEST(RecoveryTriageTest, LegacyUnframedLogsStillRecover) {
  // framing=false reads logs written by pre-integrity builds.
  MemLogDevice dev;
  DurabilityOptions o = Opts(&dev);
  o.framing = false;
  DurabilityManager mgr(o);
  ASSERT_TRUE(mgr.WriteCheckpoint(HardState{}).ok());
  ASSERT_TRUE(mgr.LogEnqueue(Msg("DB1", 1, 1.0)).ok());
  auto rec = mgr.Recover();
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->state.queue.size(), 1u);
  EXPECT_EQ(rec->tail_records_dropped, 0u);
}

}  // namespace
}  // namespace squirrel
