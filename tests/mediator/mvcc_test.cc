// MVCC snapshot tests: isolation (a pinned reader sees byte-identical
// contents before/during/after a concurrent commit), copy-on-write sharing,
// refcount GC of superseded snapshots, version-chain bookkeeping across
// recovery, and the sim-level mvcc_reads mode. This file is part of the
// TSan CI job, so the threaded isolation test doubles as a race probe.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mediator/durability/durability.h"
#include "mediator/local_store.h"
#include "source/source_db.h"
#include "testing/harness.h"
#include "testing/sim_harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::DirectHarness;
using testing::FaultSimOptions;
using testing::FaultSimResult;
using testing::MakeSchema;
using testing::RunFaultSim;

// Deterministic rendering of every materialized node in \p snap.
std::string Dump(const StoreSnapshot& snap,
                 const std::vector<std::string>& nodes) {
  std::string out;
  for (const auto& name : nodes) {
    auto repo = snap.Repo(name);
    SQ_EXPECT_OK(repo.status());
    if (repo.ok()) out += (*repo)->ToString(name) + "\n";
  }
  return out;
}

std::string DumpLive(DirectHarness& h) {
  std::string out;
  for (const auto& name : h.store().MaterializedNodes()) {
    auto repo = h.store().Repo(name);
    SQ_EXPECT_OK(repo.status());
    if (repo.ok()) out += (*repo)->ToString(name) + "\n";
  }
  return out;
}

class MvccFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({2, 200, 22, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({200, 6, 20})));

    auto vdp = BuildFigure1Vdp();
    ASSERT_TRUE(vdp.ok());
    harness_ = std::make_unique<DirectHarness>(
        std::move(vdp).value(), AnnotationExample21(),
        std::map<std::string, SourceDb*>{{"DB1", db1_.get()},
                                         {"DB2", db2_.get()}});
    SQ_ASSERT_OK(harness_->Load());
  }

  // Commits an R insert with key \p r1 and propagates it through the IUP.
  void CommitR(Time now, int64_t r1) {
    MultiDelta md;
    SQ_ASSERT_OK(md.Mutable("R", MakeSchema("R(r1, r2, r3, r4)"))
                     ->AddInsert(Tuple({r1, 100, r1 * 11, 100})));
    SQ_ASSERT_OK(harness_->CommitAndPropagate("DB1", now, md).status());
  }

  std::unique_ptr<SourceDb> db1_, db2_;
  std::unique_ptr<DirectHarness> harness_;
};

TEST_F(MvccFixture, PublishTagsVersionAndReflect) {
  LocalStore& store = harness_->store();
  EXPECT_EQ(store.Snapshot(), nullptr);
  EXPECT_EQ(store.SnapshotVersion(), 0u);

  StoreSnapshotPtr v1 = store.PublishSnapshot(TimeVector{1.5, 2.5});
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->reflect(), (TimeVector{1.5, 2.5}));
  EXPECT_EQ(store.SnapshotVersion(), 1u);
  EXPECT_EQ(store.Snapshot(), v1);

  // The snapshot captures exactly the live contents, for every repository.
  EXPECT_EQ(Dump(*v1, store.MaterializedNodes()), DumpLive(*harness_));
  EXPECT_FALSE(v1->HasRepo("R"));  // leaves have no repository
  EXPECT_FALSE(v1->Repo("R").ok());
}

TEST_F(MvccFixture, PinnedReaderSeesByteIdenticalContentsAcrossCommits) {
  LocalStore& store = harness_->store();
  const std::vector<std::string> nodes = store.MaterializedNodes();
  StoreSnapshotPtr pinned = store.PublishSnapshot(TimeVector{0, 0});
  const std::string before = Dump(*pinned, nodes);

  // Reader thread: continuously re-render the pinned snapshot (and peek at
  // the moving latest) while the writer commits; any deviation is a bug.
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (Dump(*pinned, nodes) != before) mismatches.fetch_add(1);
      StoreSnapshotPtr latest = store.Snapshot();
      if (latest != nullptr && latest->version() < pinned->version()) {
        mismatches.fetch_add(1);  // the chain must never move backwards
      }
      reads.fetch_add(1);
    }
  });

  // Writer: the update path — commit, propagate, publish — repeatedly.
  // Wait for the reader to actually start so the commits overlap reads.
  while (reads.load() == 0) std::this_thread::yield();
  for (int i = 0; i < 20; ++i) {
    CommitR(1.0 + i, 10 + i);
    store.PublishSnapshot(TimeVector{1.0 + i, 0});
  }
  // Let the reader observe the final state a few more times before stopping.
  const uint64_t after_commits = reads.load();
  while (reads.load() < after_commits + 3) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  // After the dust settles the pinned snapshot is still byte-identical ...
  EXPECT_EQ(Dump(*pinned, nodes), before);
  // ... while the latest snapshot has moved on and absorbed the commits.
  StoreSnapshotPtr latest = store.Snapshot();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->version(), 21u);
  EXPECT_NE(Dump(*latest, nodes), before);
  EXPECT_EQ(Dump(*latest, nodes), DumpLive(*harness_));
}

TEST_F(MvccFixture, CopyOnWriteSharesCleanNodesAcrossVersions) {
  LocalStore& store = harness_->store();
  StoreSnapshotPtr v1 = store.PublishSnapshot(TimeVector{0, 0});
  // A DB1.R commit dirties R' and T but leaves S' untouched.
  CommitR(1.0, 10);
  StoreSnapshotPtr v2 = store.PublishSnapshot(TimeVector{1.0, 0});

  SQ_ASSERT_OK_AND_ASSIGN(const Relation* s1, v1->Repo("S'"));
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* s2, v2->Repo("S'"));
  EXPECT_EQ(s1, s2) << "clean node must share the previous version's object";

  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t1, v1->Repo("T"));
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* t2, v2->Repo("T"));
  EXPECT_NE(t1, t2) << "dirty node must get a fresh copy";
  EXPECT_FALSE(t1->EqualContents(*t2));

  // Neither version aliases the live repository object.
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* live_t, store.Repo("T"));
  EXPECT_NE(t1, live_t);
  EXPECT_NE(t2, live_t);
}

TEST_F(MvccFixture, GcFreesSupersededSnapshotsOnlyWhenUnpinned) {
  LocalStore& store = harness_->store();
  StoreSnapshotPtr pin1 = store.PublishSnapshot(TimeVector{0, 0});
  CommitR(1.0, 10);
  StoreSnapshotPtr pin2 = store.PublishSnapshot(TimeVector{1.0, 0});
  CommitR(2.0, 11);
  store.PublishSnapshot(TimeVector{2.0, 0});  // latest, pinned by the store

  EXPECT_EQ(store.LiveSnapshots().size(), 3u);
  pin1.reset();
  EXPECT_EQ(store.LiveSnapshots().size(), 2u)
      << "unpinning the only reader of v1 must free it";
  pin2.reset();
  EXPECT_EQ(store.LiveSnapshots().size(), 1u);
  // The latest snapshot is always retained by the store itself.
  ASSERT_NE(store.Snapshot(), nullptr);
  EXPECT_EQ(store.LiveSnapshots().front()->version(), 3u);
}

TEST_F(MvccFixture, VersionCounterFastForwardsForRecovery) {
  LocalStore& store = harness_->store();
  store.PublishSnapshot(TimeVector{0, 0});
  EXPECT_EQ(store.SnapshotVersion(), 1u);
  // Recovery replays the checkpointed version (+ replayed txns) so new
  // publishes never collide with versions a pre-crash reader may pin.
  store.EnsureSnapshotVersionAtLeast(10);
  EXPECT_EQ(store.SnapshotVersion(), 10u);
  EXPECT_EQ(store.PublishSnapshot(TimeVector{1.0, 0})->version(), 11u);
  store.EnsureSnapshotVersionAtLeast(5);  // never moves backwards
  EXPECT_EQ(store.PublishSnapshot(TimeVector{2.0, 0})->version(), 12u);
}

TEST(HardStateMvccTest, EncodeRoundTripsSnapshotVersion) {
  HardState hs;
  hs.next_txn_id = 7;
  hs.next_resync_id = 3;
  hs.snapshot_version = 42;
  SQ_ASSERT_OK_AND_ASSIGN(HardState back, HardState::Decode(hs.Encode()));
  EXPECT_EQ(back.snapshot_version, 42u);
  EXPECT_EQ(back.next_txn_id, 7u);
  EXPECT_EQ(back.next_resync_id, 3u);
  // Byte-identical re-encode (the checkpoint determinism contract).
  EXPECT_EQ(back.Encode(), hs.Encode());
}

// ---- sim-level mvcc_reads -------------------------------------------------

TEST(MvccSimTest, SnapshotReadsPreserveFinalExports) {
  uint64_t snapshot_queries = 0;
  for (uint64_t seed : {11u, 23u, 47u}) {
    SQ_ASSERT_OK_AND_ASSIGN(FaultSimResult base, RunFaultSim(seed, {}));
    FaultSimOptions opts;
    opts.mvcc_reads = true;
    SQ_ASSERT_OK_AND_ASSIGN(FaultSimResult mvcc, RunFaultSim(seed, opts));
    // MVCC changes query scheduling, never update outcomes: the final
    // exports must be byte-identical to the serialized run.
    EXPECT_EQ(mvcc.final_exports, base.final_exports) << "seed " << seed;
    EXPECT_EQ(mvcc.exports_checked, base.exports_checked) << "seed " << seed;
    EXPECT_GT(mvcc.stats.snapshots_published, 0u) << "seed " << seed;
    snapshot_queries += mvcc.stats.snapshot_queries;
    EXPECT_EQ(base.stats.snapshot_queries, 0u) << "seed " << seed;
  }
  // Across the seeds, at least some queries were served lock-free.
  EXPECT_GT(snapshot_queries, 0u);
}

TEST(MvccSimTest, SnapshotChainSurvivesCrashRecovery) {
  for (uint64_t seed : {5u, 19u}) {
    FaultSimOptions base_opts;
    base_opts.durability = true;
    base_opts.mediator_crashes = 2;
    SQ_ASSERT_OK_AND_ASSIGN(FaultSimResult base, RunFaultSim(seed, base_opts));

    FaultSimOptions opts = base_opts;
    opts.mvcc_reads = true;
    SQ_ASSERT_OK_AND_ASSIGN(FaultSimResult mvcc, RunFaultSim(seed, opts));
    EXPECT_EQ(mvcc.final_exports, base.final_exports) << "seed " << seed;
    EXPECT_EQ(mvcc.recoveries, base.recoveries) << "seed " << seed;
    EXPECT_GT(mvcc.stats.snapshots_published, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace squirrel
