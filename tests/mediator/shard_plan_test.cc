// ShardPlan validation/structure tests plus ExportAnnouncer unit and
// end-to-end tests: a child mediator's exports consumed by a parent mediator
// through the stock announcer protocol, including the crash/recovery re-base
// path (child recovers behind the mirror -> epoch bump + corrective delta ->
// parent resync heals the composed view).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mediator/durability/log_device.h"
#include "mediator/export_announcer.h"
#include "mediator/mediator.h"
#include "mediator/shard_plan.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

Vdp Figure1() {
  auto vdp = BuildFigure1Vdp();
  EXPECT_TRUE(vdp.ok()) << vdp.status().ToString();
  return std::move(vdp).value();
}

TEST(ShardPlanTest, RejectsBadSpecs) {
  Vdp vdp = Figure1();
  // No shards.
  EXPECT_FALSE(ShardPlan::Build(vdp, {}).ok());
  // Two roots.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R'", "S'", "T"}},
                                      {"b", "", {}}})
                   .ok());
  // Unknown parent.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R'", "S'", "T"}},
                                      {"b", "zzz", {}}})
                   .ok());
  // Duplicate shard name.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R'", "T"}},
                                      {"a", "a", {"S'"}}})
                   .ok());
  // Shard name colliding with a node / source db.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"T", "", {"R'", "S'", "T"}}}).ok());
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"DB1", "", {"R'", "S'", "T"}}}).ok());
  // Node owned twice / node owned by nobody / leaf claimed.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R'", "S'", "T"}},
                                      {"b", "a", {"S'"}}})
                   .ok());
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R'", "T"}}}).ok());
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"R", "R'", "S'", "T"}}})
                   .ok());
  // Disconnected region: R' and S' are only connected through T.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"a", "", {"T"}},
                                      {"b", "a", {"R'", "S'"}}})
                   .ok());
  // Cut node owned by a NON-descendant (sibling): T lives in shard x but
  // needs S' from x's sibling y, and announcements only flow child->parent.
  EXPECT_FALSE(ShardPlan::Build(vdp, {{"top", "", {}},
                                      {"x", "top", {"T", "R'"}},
                                      {"y", "top", {"S'"}}})
                   .ok());
}

TEST(ShardPlanTest, TwoShardStructure) {
  Vdp vdp = Figure1();
  SQ_ASSERT_OK_AND_ASSIGN(
      ShardPlan plan,
      ShardPlan::Build(vdp, {{"top", "", {"R'", "T"}},
                             {"child", "top", {"S'"}}}));
  ASSERT_EQ(plan.shards().size(), 2u);
  // Children-first order: child before root.
  EXPECT_EQ(plan.shards()[0].name, "child");
  EXPECT_EQ(plan.root().name, "top");
  const Shard& child = plan.shards()[0];
  EXPECT_EQ(child.exports, (std::vector<std::string>{"S'"}));
  EXPECT_TRUE(child.imports.empty());
  const Shard& top = plan.root();
  EXPECT_EQ(top.imports, (std::vector<std::string>{"S'"}));
  EXPECT_EQ(top.providers.at("S'"), "child");
  // The root's exports are the base exports.
  EXPECT_EQ(top.exports, (std::vector<std::string>{"T"}));
}

TEST(ShardPlanTest, BuildVdpSynthesizesImports) {
  Vdp vdp = Figure1();
  Annotation base = AnnotationExample23(vdp);  // R', S' virtual; T hybrid
  SQ_ASSERT_OK_AND_ASSIGN(
      ShardPlan plan,
      ShardPlan::Build(vdp, {{"top", "", {"R'", "T"}},
                             {"child", "top", {"S'"}}}));

  SQ_ASSERT_OK_AND_ASSIGN(auto child_va,
                          plan.BuildVdp(plan.shards()[0], base));
  // Child: leaf S plus exported S'. Forced fully materialized even though
  // the base annotation makes S' virtual — exports are announced as deltas.
  EXPECT_EQ(child_va.first.NodeCount(), 2u);
  EXPECT_EQ(child_va.first.ExportNames(),
            (std::vector<std::string>{"S'"}));
  EXPECT_TRUE(
      child_va.second.FullyMaterialized(child_va.first, "S'"));

  SQ_ASSERT_OK_AND_ASSIGN(auto top_va, plan.BuildVdp(plan.root(), base));
  const Vdp& top = top_va.first;
  // Top: R leaf, R', S'@in leaf over the child's mirror, identity S', T.
  EXPECT_EQ(top.NodeCount(), 5u);
  const VdpNode* in = top.Find("S'@in");
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(in->is_leaf);
  EXPECT_EQ(in->source_db, "child");
  EXPECT_EQ(in->source_relation, "S'");
  const VdpNode* sp = top.Find("S'");
  ASSERT_NE(sp, nullptr);
  EXPECT_FALSE(sp->is_leaf);
  EXPECT_EQ(sp->schema.AttributeNames(),
            (std::vector<std::string>{"s1", "s2"}));
  EXPECT_EQ(top.ExportNames(), (std::vector<std::string>{"T"}));
  // Root keeps base modes: S' stays virtual, T stays hybrid.
  EXPECT_TRUE(top_va.second.FullyVirtual(top, "S'"));
  EXPECT_TRUE(top_va.second.IsHybrid(top, "T"));
}

TEST(ShardPlanTest, ThreeTierPassThrough) {
  Vdp vdp = Figure1();
  SQ_ASSERT_OK_AND_ASSIGN(
      ShardPlan plan,
      ShardPlan::Build(vdp, {{"top", "", {}},
                             {"mid", "top", {"R'", "T"}},
                             {"bottom", "mid", {"S'"}}}));
  ASSERT_EQ(plan.shards().size(), 3u);
  EXPECT_EQ(plan.shards()[0].name, "bottom");
  EXPECT_EQ(plan.shards()[1].name, "mid");
  EXPECT_EQ(plan.root().name, "top");
  // mid imports S' from bottom and exports T up to the root.
  EXPECT_EQ(plan.shards()[1].imports, (std::vector<std::string>{"S'"}));
  EXPECT_EQ(plan.shards()[1].exports, (std::vector<std::string>{"T"}));
  // top owns nothing; it imports T and serves it as the base export set.
  EXPECT_EQ(plan.root().imports, (std::vector<std::string>{"T"}));
  EXPECT_EQ(plan.root().providers.at("T"), "mid");
  EXPECT_EQ(plan.root().exports, (std::vector<std::string>{"T"}));

  // The root's VDP is just the identity wrapper over mid's mirror.
  SQ_ASSERT_OK_AND_ASSIGN(auto top_va,
                          plan.BuildVdp(plan.root(), Annotation()));
  EXPECT_EQ(top_va.first.NodeCount(), 2u);
  EXPECT_EQ(top_va.first.Find("T@in")->source_db, "mid");
}

class ExportAnnouncerE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    db1_ = std::make_unique<SourceDb>("DB1");
    db2_ = std::make_unique<SourceDb>("DB2");
    SQ_ASSERT_OK(
        db1_->AddRelation("R", MakeSchema("R(r1, r2, r3, r4) key(r1)")));
    SQ_ASSERT_OK(db2_->AddRelation("S", MakeSchema("S(s1, s2, s3) key(s1)")));
    SQ_ASSERT_OK(db1_->InsertTuple(0, "R", Tuple({1, 100, 11, 100})));
    SQ_ASSERT_OK(db2_->InsertTuple(0, "S", Tuple({100, 5, 10})));
  }

  /// Builds child {S'} / top {R', T} over Figure 1 and starts both
  /// mediators, the child with \p child_options.
  void BuildTopology(MediatorOptions child_options) {
    Vdp base = Figure1();
    auto plan = ShardPlan::Build(base, {{"top", "", {"R'", "T"}},
                                        {"child", "top", {"S'"}}});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).value();

    auto child_va = plan_.BuildVdp(plan_.shards()[0], Annotation());
    ASSERT_TRUE(child_va.ok()) << child_va.status().ToString();
    auto child = Mediator::Create(child_va->first, child_va->second,
                                  {{db2_.get(), 0.5, 0.2, 0.0}}, &scheduler_,
                                  child_options);
    ASSERT_TRUE(child.ok()) << child.status().ToString();
    child_ = std::move(child).value();
    SQ_ASSERT_OK(child_->Start());

    auto ea = ExportAnnouncer::Create(child_.get(), "child",
                                      plan_.shards()[0].exports, &scheduler_);
    ASSERT_TRUE(ea.ok()) << ea.status().ToString();
    exporter_ = std::move(ea).value();

    auto top_va = plan_.BuildVdp(plan_.root(), Annotation());
    ASSERT_TRUE(top_va.ok()) << top_va.status().ToString();
    auto top = Mediator::Create(top_va->first, top_va->second,
                                {{db1_.get(), 0.5, 0.2, 0.0},
                                 {exporter_->mirror(), 0.5, 0.2, 0.0}},
                                &scheduler_, MediatorOptions{});
    ASSERT_TRUE(top.ok()) << top.status().ToString();
    top_ = std::move(top).value();
    SQ_ASSERT_OK(top_->Start());
  }

  std::string QueryTopT(Time at) {
    std::string got = "<no answer>";
    scheduler_.At(at, [this, &got]() {
      top_->SubmitQuery(ViewQuery{"T", {}, nullptr},
                        [&got](Result<ViewAnswer> ans) {
                          ASSERT_TRUE(ans.ok()) << ans.status().ToString();
                          got = testing::Rows(ans->data);
                        });
    });
    scheduler_.RunUntil(at + 100.0);
    return got;
  }

  Scheduler scheduler_;
  MemLogDevice child_dev_;
  std::unique_ptr<SourceDb> db1_, db2_;
  ShardPlan plan_;
  std::unique_ptr<Mediator> child_, top_;
  std::unique_ptr<ExportAnnouncer> exporter_;
};

TEST_F(ExportAnnouncerE2E, ParentConsumesChildExports) {
  BuildTopology(MediatorOptions{});
  // The mirror is seeded from the child's initial load, so the parent's
  // initial view matches a single-mediator deployment.
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* s0, exporter_->mirror()->Current("S'"));
  EXPECT_EQ(testing::Rows(*s0), "(100, 5) ");

  // New S row (passes s3 < 50) flows child -> mirror -> parent; the new R
  // row then joins against the propagated S'.
  scheduler_.At(1.0, [this]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S",
                                   Tuple({200, 6, 20})));
  });
  scheduler_.At(2.0, [this]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 200, 22, 100})));
  });
  EXPECT_EQ(QueryTopT(50.0), "(1, 11, 100, 5) (2, 22, 200, 6) ");
  EXPECT_GE(exporter_->commits_mirrored(), 1u);
  EXPECT_EQ(exporter_->corrective_commits(), 0u);
  // The parent talked to the mirror as an ordinary announcing source.
  EXPECT_GT(top_->stats().messages_received, 0u);
}

TEST_F(ExportAnnouncerE2E, RejectsNonMaterializedExport) {
  Vdp base = Figure1();
  auto plan = ShardPlan::Build(base, {{"top", "", {"R'", "T"}},
                                      {"child", "top", {"S'"}}});
  ASSERT_TRUE(plan.ok());
  // Bypass BuildVdp's forcing to prove Create checks materialization: build
  // the child over its shard VDP but with the base (virtual) modes.
  auto child_va = plan->BuildVdp(plan->shards()[0], Annotation());
  ASSERT_TRUE(child_va.ok());
  Annotation bad;
  SQ_ASSERT_OK(bad.SetAll(child_va->first, "S'", AttrMode::kVirtual));
  auto child = Mediator::Create(child_va->first, bad,
                                {{db2_.get(), 0.5, 0.2, 0.0}}, &scheduler_,
                                MediatorOptions{});
  ASSERT_TRUE(child.ok());
  SQ_ASSERT_OK((*child)->Start());
  EXPECT_FALSE(ExportAnnouncer::Create(child->get(), "child", {"S'"},
                                       &scheduler_)
                   .ok());
  EXPECT_FALSE(
      ExportAnnouncer::Create(child->get(), "child", {"S"}, &scheduler_)
          .ok());
}

TEST_F(ExportAnnouncerE2E, ChildRecoveryRebasesMirrorAndParentResyncs) {
  // Checkpoint-only durability: the child provably LOSES the S' update it
  // already announced to the mirror, so recovery lands BEHIND the mirror —
  // the exact divergence OnChildRecovered's corrective delta must heal.
  MediatorOptions child_options;
  child_options.durability.device = &child_dev_;
  child_options.durability.wal = false;
  child_options.durability.resync_on_recovery = true;
  BuildTopology(child_options);

  scheduler_.At(1.0, [this]() {
    SQ_EXPECT_OK(db2_->InsertTuple(scheduler_.Now(), "S",
                                   Tuple({200, 6, 20})));
  });
  scheduler_.At(2.0, [this]() {
    SQ_EXPECT_OK(db1_->InsertTuple(scheduler_.Now(), "R",
                                   Tuple({2, 200, 22, 100})));
  });
  // Crash after the update propagated; recover in the same event, exactly
  // as the harness drives child shards.
  scheduler_.At(10.0, [this]() {
    Status st = child_->CrashAndRecover();
    ASSERT_TRUE(st.ok()) << st.ToString();
    SQ_EXPECT_OK(exporter_->OnChildRecovered());
  });
  EXPECT_EQ(QueryTopT(60.0), "(1, 11, 100, 5) (2, 22, 200, 6) ");
  // The corrective re-base fired (checkpoint-only recovery rolled back the
  // mirrored commit) and the child's paranoid resync re-pulled DB2, whose
  // corrective delta flowed through the mirror again.
  EXPECT_GE(exporter_->corrective_commits(), 1u);
  // The parent saw the mirror's epoch bump and resynced it like any
  // restarted source.
  EXPECT_GE(top_->stats().epoch_bumps, 1u);
  EXPECT_GE(top_->stats().resyncs_completed, 1u);
  // Mirror and child repository agree again.
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* mirror_s,
                          exporter_->mirror()->Current("S'"));
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* repo_s, child_->store().Repo("S'"));
  EXPECT_EQ(testing::Rows(*mirror_s), testing::Rows(*repo_s));
}

}  // namespace
}  // namespace squirrel
