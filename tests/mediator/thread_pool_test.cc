// ThreadPool unit tests plus the parallel-IUP stress test: the threaded
// kernel — under seeded worker-scheduling perturbation — must produce
// byte-identical repositories and identical IupStats to the serial oracle.
// This file is part of the TSan CI job (see .github/workflows/ci.yml), so
// every test here doubles as a data-race probe.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "mediator/iup.h"
#include "source/source_db.h"
#include "testing/harness.h"
#include "testing/util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

using testing::DirectHarness;
using testing::MakeSchema;

// ---- pool units -----------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::vector<std::atomic<int>> hits(257);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.RunAll(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  const auto caller = std::this_thread::get_id();
  int ran = 0;
  bool on_caller = true;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&] {
      ++ran;
      on_caller = on_caller && std::this_thread::get_id() == caller;
    });
  }
  pool.RunAll(tasks);
  EXPECT_EQ(ran, 10);
  EXPECT_TRUE(on_caller) << "inline mode must not hop threads";
}

TEST(ThreadPoolTest, WorkersRunTasksOffTheOrchestratorThread) {
  ThreadPool pool(3);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&] {
      if (std::this_thread::get_id() == caller) on_caller.fetch_add(1);
    });
  }
  pool.RunAll(tasks);
  EXPECT_EQ(on_caller.load(), 0)
      << "with workers, RunAll must never execute tasks on the caller";
}

TEST(ThreadPoolTest, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.RunAll({});  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) tasks.push_back([&] { total.fetch_add(1); });
    pool.RunAll(tasks);
  }
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPoolTest, PerturbationChangesScheduleNotResults) {
  // Identical batches under different perturb seeds must accumulate the
  // same multiset of results; the perturbation may only stretch time.
  for (uint64_t seed : {0ull, 1ull, 42ull, 0x9e3779b97f4a7c15ull}) {
    ThreadPool pool(4);
    pool.SetPerturbSeed(seed);
    std::atomic<int64_t> sum{0};
    std::vector<std::function<void()>> tasks;
    for (int64_t i = 0; i < 100; ++i) {
      tasks.push_back([&sum, i] { sum.fetch_add(i * i); });
    }
    pool.RunAll(tasks);
    EXPECT_EQ(sum.load(), 328350) << "seed " << seed;
  }
}

TEST(ThreadPoolTest, DestructionWithIdleWorkersIsClean) {
  auto pool = std::make_unique<ThreadPool>(4);
  std::atomic<int> ran{0};
  pool->RunAll({[&] { ran.fetch_add(1); }});
  EXPECT_EQ(ran.load(), 1);
  pool.reset();  // dtor must join without deadlock
}

// ---- parallel-IUP stress --------------------------------------------------
//
// Drives the Figure-4 VDP (4 sources, two exports, a difference node — the
// widest dag in the paper) through a seeded random workload twice: once on
// the serial oracle, once with a perturbed thread pool attached, and demands
// byte-identical repositories and identical stats.

struct StressResult {
  std::string repo_dump;  ///< deterministic rendering of every repository
  IupStats stats;         ///< summed over all ProcessBatch calls
};

void ExpectSameStats(const IupStats& a, const IupStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.rules_fired, b.rules_fired) << what;
  EXPECT_EQ(a.atoms_in, b.atoms_in) << what;
  EXPECT_EQ(a.atoms_propagated, b.atoms_propagated) << what;
  EXPECT_EQ(a.nodes_processed, b.nodes_processed) << what;
  EXPECT_EQ(a.polls, b.polls) << what;
  EXPECT_EQ(a.polled_tuples, b.polled_tuples) << what;
  EXPECT_EQ(a.temps_built, b.temps_built) << what;
  EXPECT_EQ(a.poll_retries, b.poll_retries) << what;
}

// Runs the whole seeded workload with `pool` attached to the IUP (nullptr =
// serial oracle). Each call builds fresh sources, so runs are independent.
StressResult RunFigure4Stress(uint64_t seed, bool example51,
                              ThreadPool* pool) {
  std::vector<std::unique_ptr<SourceDb>> dbs;
  for (const char* name : {"DBA", "DBB", "DBC", "DBD"}) {
    dbs.push_back(std::make_unique<SourceDb>(name));
  }
  SQ_EXPECT_OK(dbs[0]->AddRelation("A", MakeSchema("A(a1, a2) key(a1)")));
  SQ_EXPECT_OK(dbs[1]->AddRelation("B", MakeSchema("B(b1, b2) key(b1)")));
  SQ_EXPECT_OK(dbs[2]->AddRelation("C", MakeSchema("C(c1, a1) key(c1)")));
  SQ_EXPECT_OK(dbs[3]->AddRelation("D", MakeSchema("D(d1, b1) key(d1)")));

  struct RelState {
    std::string rel;
    size_t db;
    std::map<int64_t, Tuple> rows;
  };
  std::vector<RelState> rels = {
      {"A", 0, {}}, {"B", 1, {}}, {"C", 2, {}}, {"D", 3, {}}};
  Rng rng(seed * 7919u + 11);
  Time now = 0;

  auto random_tuple = [&](const std::string& rel, int64_t key) {
    if (rel == "A") return Tuple({key, rng.UniformInt(-3, 10)});
    if (rel == "B") return Tuple({key, rng.UniformInt(0, 6)});
    if (rel == "C") return Tuple({key, rng.UniformInt(0, 8)});
    return Tuple({key, rng.UniformInt(5, 15)});
  };
  auto mutate = [&](RelState* rs, MultiDelta* md, std::set<int64_t>* used) {
    auto schema = dbs[rs->db]->RelationSchema(rs->rel);
    EXPECT_TRUE(schema.ok());
    if (!rs->rows.empty() && rng.Bernoulli(0.35)) {
      auto it = rs->rows.begin();
      std::advance(it, rng.Uniform(rs->rows.size()));
      if (!used->insert(it->first).second) return;
      SQ_EXPECT_OK(md->Mutable(rs->rel, *schema)->AddDelete(it->second));
      rs->rows.erase(it);
    } else {
      int64_t key = rng.UniformInt(0, 12);
      if (rs->rows.count(key) || !used->insert(key).second) return;
      Tuple t = random_tuple(rs->rel, key);
      rs->rows[key] = t;
      SQ_EXPECT_OK(md->Mutable(rs->rel, *schema)->AddInsert(t));
    }
  };

  for (auto& rs : rels) {
    MultiDelta md;
    std::set<int64_t> used;
    for (int i = 0; i < 5; ++i) mutate(&rs, &md, &used);
    if (!md.Empty()) SQ_EXPECT_OK(dbs[rs.db]->Commit(now, md));
  }

  auto vdp = BuildFigure4Vdp();
  EXPECT_TRUE(vdp.ok());
  Annotation ann =
      example51 ? AnnotationExample51(*vdp) : Annotation::AllMaterialized();
  std::map<std::string, SourceDb*> source_map;
  for (auto& db : dbs) source_map[db->name()] = db.get();
  DirectHarness h(std::move(vdp).value(), ann, source_map);
  SQ_EXPECT_OK(h.Load());
  h.iup().SetThreadPool(pool);

  StressResult out;
  for (int step = 0; step < 30; ++step) {
    now += 1.0;
    RelState& rs = rels[rng.Uniform(rels.size())];
    MultiDelta md;
    std::set<int64_t> used;
    int ops = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < ops; ++i) mutate(&rs, &md, &used);
    if (md.Empty()) continue;
    auto stats = h.CommitAndPropagate(dbs[rs.db]->name(), now, md);
    SQ_EXPECT_OK(stats.status());
    if (stats.ok()) out.stats.Merge(*stats);
    SQ_EXPECT_OK(h.VerifyRepos());
  }
  for (const auto& name : h.store().MaterializedNodes()) {
    auto repo = h.store().Repo(name);
    SQ_EXPECT_OK(repo.status());
    if (repo.ok()) out.repo_dump += (*repo)->ToString(name) + "\n";
  }
  return out;
}

class IupStress : public ::testing::TestWithParam<int> {};

TEST_P(IupStress, ThreadedKernelMatchesSerialOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  for (bool example51 : {false, true}) {
    StressResult serial = RunFigure4Stress(seed, example51, nullptr);
    ASSERT_FALSE(serial.repo_dump.empty());
    for (int workers : {2, 4}) {
      for (uint64_t perturb : {0ull, seed * 1000003ull + 1}) {
        ThreadPool pool(workers);
        pool.SetPerturbSeed(perturb);
        StressResult threaded = RunFigure4Stress(seed, example51, &pool);
        const std::string what =
            "seed " + std::to_string(seed) +
            (example51 ? " example51" : " allmat") + " workers " +
            std::to_string(workers) + " perturb " + std::to_string(perturb);
        EXPECT_EQ(threaded.repo_dump, serial.repo_dump) << what;
        ExpectSameStats(threaded.stats, serial.stats, what);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IupStress, ::testing::Range(1, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace squirrel
