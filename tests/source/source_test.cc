#include <gtest/gtest.h>

#include "source/announcer.h"
#include "source/source_db.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Pred;

MultiDelta OneInsert(const std::string& rel, const Schema& schema,
                     const Tuple& t) {
  MultiDelta md;
  EXPECT_TRUE(md.Mutable(rel, schema)->AddInsert(t).ok());
  return md;
}

TEST(SourceDbTest, DeclareAndCommit) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a, b) key(a)")));
  EXPECT_FALSE(db.AddRelation("R", MakeSchema("R(a)")).ok());
  SQ_ASSERT_OK(db.InsertTuple(1.0, "R", Tuple({1, 10})));
  SQ_ASSERT_OK_AND_ASSIGN(const Relation* r, db.Current("R"));
  EXPECT_TRUE(r->Contains(Tuple({1, 10})));
  EXPECT_EQ(db.CommitCount(), 1u);
  EXPECT_DOUBLE_EQ(db.LastCommitTime(), 1.0);
}

TEST(SourceDbTest, CommitTimeMonotonicity) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  SQ_ASSERT_OK(db.InsertTuple(5.0, "R", Tuple({1})));
  EXPECT_FALSE(db.InsertTuple(4.0, "R", Tuple({2})).ok());
  SQ_ASSERT_OK(db.InsertTuple(5.0, "R", Tuple({3})));  // equal time ok
}

TEST(SourceDbTest, CommitUnknownRelationRejected) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  MultiDelta md = OneInsert("Zed", MakeSchema("Z(a)"), Tuple({1}));
  EXPECT_FALSE(db.Commit(1.0, md).ok());
}

TEST(SourceDbTest, RedundantCommitRejected) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  SQ_ASSERT_OK(db.InsertTuple(1.0, "R", Tuple({1})));
  EXPECT_FALSE(db.InsertTuple(2.0, "R", Tuple({1})).ok());
  EXPECT_FALSE(db.DeleteTuple(2.0, "R", Tuple({9})).ok());
}

TEST(SourceDbTest, StateAtReplaysHistory) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  SQ_ASSERT_OK(db.InsertTuple(1.0, "R", Tuple({1})));
  SQ_ASSERT_OK(db.InsertTuple(2.0, "R", Tuple({2})));
  SQ_ASSERT_OK(db.DeleteTuple(3.0, "R", Tuple({1})));

  SQ_ASSERT_OK_AND_ASSIGN(Relation at0, db.StateAt("R", 0.5));
  EXPECT_TRUE(at0.Empty());
  SQ_ASSERT_OK_AND_ASSIGN(Relation at1, db.StateAt("R", 1.0));
  EXPECT_EQ(testing::Rows(at1), "(1) ");
  SQ_ASSERT_OK_AND_ASSIGN(Relation at2, db.StateAt("R", 2.5));
  EXPECT_EQ(testing::Rows(at2), "(1) (2) ");
  SQ_ASSERT_OK_AND_ASSIGN(Relation at3, db.StateAt("R", 99.0));
  EXPECT_EQ(testing::Rows(at3), "(2) ");
}

TEST(SourceDbTest, QueryProjectsAndSelects) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a, b)")));
  SQ_ASSERT_OK(db.InsertTuple(1.0, "R", Tuple({1, 10})));
  SQ_ASSERT_OK(db.InsertTuple(2.0, "R", Tuple({2, 20})));
  SQ_ASSERT_OK_AND_ASSIGN(Relation out,
                          db.Query("R", {"a"}, Pred("b > 15")));
  EXPECT_EQ(testing::Rows(out), "(2) ");
}

TEST(SourceDbTest, CommitListenersInvokedInOrder) {
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  int calls = 0;
  std::vector<int> order;
  db.AddCommitListener([&](Time t, const MultiDelta& d) {
    ++calls;
    order.push_back(1);
    EXPECT_GT(t, 0.0);
    EXPECT_FALSE(d.Empty());
  });
  // Sharded topologies hang several announcers off one db; every listener
  // must see every commit, in installation order.
  db.AddCommitListener([&](Time, const MultiDelta&) { order.push_back(2); });
  SQ_ASSERT_OK(db.InsertTuple(1.0, "R", Tuple({1})));
  SQ_ASSERT_OK(db.InsertTuple(2.0, "R", Tuple({2})));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(AnnouncerTest, ImmediateModeAnnouncesEveryCommit) {
  Scheduler sched;
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  Channel<SourceToMediatorMsg> ch(&sched, 1.0);
  std::vector<UpdateMessage> got;
  ch.SetReceiver([&](SourceToMediatorMsg msg) {
    got.push_back(std::get<UpdateMessage>(std::move(msg)));
  });
  Announcer ann(&db, &sched, &ch, /*period=*/0);
  ann.Start();
  sched.At(1.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(1.0, "R", Tuple({1}))); });
  sched.At(2.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(2.0, "R", Tuple({2}))); });
  sched.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].source, "DB");
  EXPECT_DOUBLE_EQ(got[0].send_time, 1.0);
  EXPECT_EQ(got[0].seq, 1u);
  EXPECT_EQ(got[1].seq, 2u);
  EXPECT_EQ(ann.AnnouncementCount(), 2u);
}

TEST(AnnouncerTest, PeriodicModeBatchesNetChanges) {
  Scheduler sched;
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  Channel<SourceToMediatorMsg> ch(&sched, 0.0);
  std::vector<UpdateMessage> got;
  ch.SetReceiver([&](SourceToMediatorMsg msg) {
    got.push_back(std::get<UpdateMessage>(std::move(msg)));
  });
  Announcer ann(&db, &sched, &ch, /*period=*/10.0);
  ann.Start();
  // Three commits within one period; +1 then -1 cancels.
  sched.At(1.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(1.0, "R", Tuple({1}))); });
  sched.At(2.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(2.0, "R", Tuple({2}))); });
  sched.At(3.0, [&]() { SQ_EXPECT_OK(db.DeleteTuple(3.0, "R", Tuple({1}))); });
  sched.RunUntil(11.0);
  ASSERT_EQ(got.size(), 1u);
  const Delta* d = got[0].delta.Find("R");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->CountOf(Tuple({1})), 0);
  EXPECT_EQ(d->CountOf(Tuple({2})), 1);
  EXPECT_DOUBLE_EQ(got[0].send_time, 10.0);
}

TEST(AnnouncerTest, PeriodicModeSkipsEmptyPeriods) {
  Scheduler sched;
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  Channel<SourceToMediatorMsg> ch(&sched, 0.0);
  int messages = 0;
  ch.SetReceiver([&](SourceToMediatorMsg) { ++messages; });
  Announcer ann(&db, &sched, &ch, /*period=*/5.0);
  ann.Start();
  sched.RunUntil(30.0);  // no commits at all
  EXPECT_EQ(messages, 0);
}

TEST(PollResponderTest, AnswersAfterDelayAtOneState) {
  Scheduler sched;
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a, b)")));
  SQ_ASSERT_OK(db.InsertTuple(0.0, "R", Tuple({1, 10})));
  Channel<SourceToMediatorMsg> ch(&sched, 1.0);
  std::vector<PollAnswer> got;
  ch.SetReceiver([&](SourceToMediatorMsg msg) {
    got.push_back(std::get<PollAnswer>(std::move(msg)));
  });
  PollResponder responder(&db, &sched, &ch, nullptr, /*q_proc=*/2.0);
  PollRequest req;
  req.id = 7;
  req.polls.push_back({"R", {"a"}, nullptr});
  req.polls.push_back({"R", {"b"}, Pred("a = 1")});
  sched.At(1.0, [&]() { responder.OnRequest(req); });
  // A commit AFTER the processing completes must not affect the answer.
  sched.At(5.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(5.0, "R", Tuple({2, 20}))); });
  sched.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 7u);
  EXPECT_DOUBLE_EQ(got[0].answered_at, 3.0);  // 1.0 + q_proc 2.0
  ASSERT_EQ(got[0].results.size(), 2u);
  EXPECT_EQ(testing::Rows(got[0].results[0]), "(1) ");
  EXPECT_EQ(testing::Rows(got[0].results[1]), "(10) ");
}

TEST(PollResponderTest, FlushesAnnouncerBeforeAnswering) {
  Scheduler sched;
  SourceDb db("DB");
  SQ_ASSERT_OK(db.AddRelation("R", MakeSchema("R(a)")));
  Channel<SourceToMediatorMsg> ch(&sched, 1.0);
  std::vector<int> kinds;  // 0 = update, 1 = answer
  ch.SetReceiver([&](SourceToMediatorMsg msg) {
    kinds.push_back(std::holds_alternative<PollAnswer>(msg) ? 1 : 0);
  });
  Announcer ann(&db, &sched, &ch, /*period=*/100.0);  // long batching
  ann.Start();
  PollResponder responder(&db, &sched, &ch, &ann, /*q_proc=*/0.5);
  sched.At(1.0, [&]() { SQ_EXPECT_OK(db.InsertTuple(1.0, "R", Tuple({1}))); });
  PollRequest req;
  req.polls.push_back({"R", {"a"}, nullptr});
  sched.At(2.0, [&]() { responder.OnRequest(req); });
  sched.RunUntil(50.0);
  // The pending update must arrive BEFORE the answer (FIFO, same channel).
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], 0);
  EXPECT_EQ(kinds[1], 1);
}

}  // namespace
}  // namespace squirrel
