#include "vdp/rules.h"

#include <gtest/gtest.h>

#include <map>

#include "delta/delta_algebra.h"
#include "relational/operators.h"
#include "testing/util.h"
#include "vdp/builder.h"

namespace squirrel {
namespace {

using testing::MakeSchema;
using testing::Pred;

/// NodeStateFn over a plain map of relations.
NodeStateFn StatesOf(const std::map<std::string, Relation>& states) {
  return [&states](const std::string& node, const std::vector<std::string>&)
             -> Result<std::shared_ptr<const Relation>> {
    auto it = states.find(node);
    if (it == states.end()) return Status::NotFound("no state for " + node);
    return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                           &it->second);
  };
}

/// Sequential-discipline simulation of one IUP step at a single parent:
/// fires each child's delta in the given order, applying each child's delta
/// to the shared state map right after its firing; returns the smashed
/// parent delta.
Result<Delta> FireAll(const VdpNode& parent,
                      std::map<std::string, Relation>* states,
                      std::vector<std::pair<std::string, Delta>> deltas) {
  Delta total(parent.schema);
  for (auto& [child, delta] : deltas) {
    SQ_ASSIGN_OR_RETURN(
        Delta part, FireEdgeRules(parent, child, delta, StatesOf(*states)));
    SQ_RETURN_IF_ERROR(total.SmashInPlace(part));
    SQ_RETURN_IF_ERROR(ApplyDelta(&(*states)[child], delta));
  }
  return total;
}

/// Fully recomputes the parent from the (current) child states.
Result<Relation> Recompute(const VdpNode& parent,
                           const std::map<std::string, Relation>& states) {
  return parent.def->Evaluate(StatesOf(states));
}

class SpjRulesTest : public ::testing::Test {
 protected:
  // T = π_{a,c} (R'(a,b) ⋈_{b=c} S'(c,d)) — two bag children.
  void SetUp() override {
    VdpBuilder b;
    b.Leaf("R", "DB1", "R", "R(a, b)");
    b.Leaf("S", "DB2", "S", "S(c, d)");
    b.LeafParent("R'", "R", {"a", "b"});
    b.LeafParent("S'", "S", {"c", "d"});
    b.Spj("T", {{"R'", {"a", "b"}, ""}, {"S'", {"c", "d"}, ""}}, {"b = c"},
          {"a", "c"}, "", true);
    auto vdp = b.Build();
    ASSERT_TRUE(vdp.ok()) << vdp.status().ToString();
    vdp_ = std::move(vdp).value();
    states_["R'"] = Relation(MakeSchema("X(a, b)"), Semantics::kBag);
    states_["S'"] = Relation(MakeSchema("X(c, d)"), Semantics::kBag);
  }

  Delta MakeDelta(const std::string& schema,
                  std::vector<std::pair<Tuple, int64_t>> atoms) {
    Delta d(MakeSchema(schema));
    for (auto& [t, c] : atoms) EXPECT_TRUE(d.Add(t, c).ok());
    return d;
  }

  Vdp vdp_;
  std::map<std::string, Relation> states_;
};

TEST_F(SpjRulesTest, SingleChildInsertPropagates) {
  SQ_ASSERT_OK(states_["S'"].Insert(Tuple({7, 70})));
  const VdpNode* t = vdp_.Find("T");
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dt,
                          FireEdgeRules(*t, "R'", dr, StatesOf(states_)));
  EXPECT_EQ(dt.CountOf(Tuple({1, 7})), 1);
  EXPECT_EQ(dt.AtomCount(), 1u);
}

TEST_F(SpjRulesTest, NoMatchNoPropagation) {
  SQ_ASSERT_OK(states_["S'"].Insert(Tuple({9, 90})));
  const VdpNode* t = vdp_.Find("T");
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dt,
                          FireEdgeRules(*t, "R'", dr, StatesOf(states_)));
  EXPECT_TRUE(dt.Empty());
}

TEST_F(SpjRulesTest, Example61BothChildrenChange) {
  // The Example 6.1 trap: ΔR' ⋈ ΔS' must be counted exactly once.
  const VdpNode* t = vdp_.Find("T");
  // Old states empty; both children gain a matching tuple.
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 1}});
  Delta ds = MakeDelta("S(c, d)", {{Tuple({7, 70}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(
      Delta dt, FireAll(*t, &states_, {{"R'", dr}, {"S'", ds}}));
  // Exactly one (1, 7) appears.
  EXPECT_EQ(dt.CountOf(Tuple({1, 7})), 1);
  // And the incremental result matches recomputation.
  SQ_ASSERT_OK_AND_ASSIGN(Relation expect, Recompute(*t, states_));
  Relation tr(t->schema, Semantics::kBag);
  SQ_ASSERT_OK(ApplyDelta(&tr, dt));
  EXPECT_TRUE(tr.EqualContents(expect));
}

TEST_F(SpjRulesTest, Example61ReverseOrder) {
  const VdpNode* t = vdp_.Find("T");
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 1}});
  Delta ds = MakeDelta("S(c, d)", {{Tuple({7, 70}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(
      Delta dt, FireAll(*t, &states_, {{"S'", ds}, {"R'", dr}}));
  EXPECT_EQ(dt.CountOf(Tuple({1, 7})), 1);
}

TEST_F(SpjRulesTest, MixedInsertDeleteAcrossChildren) {
  SQ_ASSERT_OK(states_["R'"].Insert(Tuple({1, 7})));
  SQ_ASSERT_OK(states_["R'"].Insert(Tuple({2, 8})));
  SQ_ASSERT_OK(states_["S'"].Insert(Tuple({7, 70})));
  SQ_ASSERT_OK(states_["S'"].Insert(Tuple({8, 80})));
  const VdpNode* t = vdp_.Find("T");
  // R' loses (1,7); S' gains (7,71) — net effect on T must match recompute.
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), -1}});
  Delta ds = MakeDelta("S(c, d)", {{Tuple({7, 71}), 1}});
  Relation before(t->schema, Semantics::kBag);
  SQ_ASSERT_OK_AND_ASSIGN(Relation b0, Recompute(*t, states_));
  before = b0;
  SQ_ASSERT_OK_AND_ASSIGN(
      Delta dt, FireAll(*t, &states_, {{"R'", dr}, {"S'", ds}}));
  SQ_ASSERT_OK(ApplyDelta(&before, dt));
  SQ_ASSERT_OK_AND_ASSIGN(Relation expect, Recompute(*t, states_));
  EXPECT_TRUE(before.EqualContents(expect));
}

TEST_F(SpjRulesTest, TermSelectionFiltersDelta) {
  // U = π_a(σ_{b=7} R') — term selection must filter the delta.
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(a, b)");
  b.LeafParent("R'", "R", {"a", "b"});
  b.Spj("U", {{"R'", {"a"}, "b = 7"}}, {}, {}, "", true);
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, b.Build());
  const VdpNode* u = vdp.Find("U");
  std::map<std::string, Relation> states;
  states["R'"] = Relation(MakeSchema("X(a, b)"), Semantics::kBag);
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 1}, {Tuple({2, 9}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta du,
                          FireEdgeRules(*u, "R'", dr, StatesOf(states)));
  EXPECT_EQ(du.CountOf(Tuple({1})), 1);
  EXPECT_EQ(du.CountOf(Tuple({2})), 0);
}

TEST_F(SpjRulesTest, ProjectionMergesDeltaCounts) {
  // T's outer projection π_{a,c}: two R' tuples with same a merge.
  SQ_ASSERT_OK(states_["S'"].Insert(Tuple({7, 70})));
  const VdpNode* t = vdp_.Find("T");
  Delta dr = MakeDelta("R(a, b)", {{Tuple({1, 7}), 2}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dt,
                          FireEdgeRules(*t, "R'", dr, StatesOf(states_)));
  EXPECT_EQ(dt.CountOf(Tuple({1, 7})), 2);
}

TEST(SelfJoinRulesTest, SelfJoinCountsOnce) {
  // P = R' ⋈_{b = c2... } R' is impossible without renaming; emulate a
  // self-join via two terms over the SAME child with disjoint projections.
  // Here: P = π_{a}(R'[a,b]) x π_{b}(R'[a,b]) (cross product of two
  // projections of the same child).
  VdpBuilder builder;
  builder.Leaf("R", "DB1", "R", "R(a, b)");
  builder.LeafParent("R'", "R", {"a", "b"});
  builder.Spj("P", {{"R'", {"a"}, ""}, {"R'", {"b"}, ""}}, {""}, {}, "",
              true);
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, builder.Build());
  const VdpNode* p = vdp.Find("P");

  std::map<std::string, Relation> states;
  states["R'"] = Relation(MakeSchema("X(a, b)"), Semantics::kBag);
  SQ_ASSERT_OK(states["R'"].Insert(Tuple({1, 10})));

  // Compute the old P, fire a delta, compare against recompute.
  SQ_ASSERT_OK_AND_ASSIGN(Relation before,
                          p->def->Evaluate(StatesOf(states)));
  Delta dr(MakeSchema("R(a, b)"));
  SQ_ASSERT_OK(dr.AddInsert(Tuple({2, 20})));
  SQ_ASSERT_OK_AND_ASSIGN(Delta dp,
                          FireEdgeRules(*p, "R'", dr, StatesOf(states)));
  SQ_ASSERT_OK(ApplyDelta(&states["R'"], dr));
  SQ_ASSERT_OK_AND_ASSIGN(Relation expect,
                          p->def->Evaluate(StatesOf(states)));
  SQ_ASSERT_OK(ApplyDelta(&before, dp));
  EXPECT_TRUE(before.EqualContents(expect))
      << before.ToString("got") << expect.ToString("want");
}

class DiffRulesTest : public ::testing::Test {
 protected:
  // G = π_x(L') − π_x(M').
  void SetUp() override {
    VdpBuilder b;
    b.Leaf("L", "DB1", "L", "L(x, y)");
    b.Leaf("M", "DB2", "M", "M(x, z)");
    b.LeafParent("L'", "L", {"x", "y"});
    b.LeafParent("M'", "M", {"x", "z"});
    b.Diff("G", {"L'", {"x"}, ""}, {"M'", {"x"}, ""}, true);
    auto vdp = b.Build();
    ASSERT_TRUE(vdp.ok()) << vdp.status().ToString();
    vdp_ = std::move(vdp).value();
    states_["L'"] = Relation(MakeSchema("X(x, y)"), Semantics::kBag);
    states_["M'"] = Relation(MakeSchema("X(x, z)"), Semantics::kBag);
  }

  Delta MakeDelta(const std::string& schema,
                  std::vector<std::pair<Tuple, int64_t>> atoms) {
    Delta d(MakeSchema(schema));
    for (auto& [t, c] : atoms) EXPECT_TRUE(d.Add(t, c).ok());
    return d;
  }

  Relation EvalG() {
    auto r = vdp_.Find("G")->def->Evaluate(StatesOf(states_));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  Vdp vdp_;
  std::map<std::string, Relation> states_;
};

TEST_F(DiffRulesTest, InsertIntoLeftNotInRight) {
  const VdpNode* g = vdp_.Find("G");
  Delta dl = MakeDelta("L(x, y)", {{Tuple({1, 10}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "L'", dl, StatesOf(states_)));
  EXPECT_EQ(dg.CountOf(Tuple({1})), 1);
}

TEST_F(DiffRulesTest, InsertIntoLeftSuppressedByRight) {
  SQ_ASSERT_OK(states_["M'"].Insert(Tuple({1, 99})));
  const VdpNode* g = vdp_.Find("G");
  Delta dl = MakeDelta("L(x, y)", {{Tuple({1, 10}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "L'", dl, StatesOf(states_)));
  EXPECT_TRUE(dg.Empty());
}

TEST_F(DiffRulesTest, CorrectedDiff1DeletionRule) {
  // The paper's diff1 says (ΔT)⁻ = (ΔR₁)⁻ ∩ R₂, which is wrong: deleting a
  // tuple from L that IS in M must not delete from G (it was never there),
  // while deleting one NOT in M must. Verify the corrected "− R₂" behavior.
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 10})));
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({2, 20})));
  SQ_ASSERT_OK(states_["M'"].Insert(Tuple({2, 99})));
  // G = {1}.
  const VdpNode* g = vdp_.Find("G");
  // Delete both from L.
  Delta dl = MakeDelta("L(x, y)", {{Tuple({1, 10}), -1}, {Tuple({2, 20}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "L'", dl, StatesOf(states_)));
  EXPECT_EQ(dg.CountOf(Tuple({1})), -1);  // was in G, leaves
  EXPECT_EQ(dg.CountOf(Tuple({2})), 0);   // never was in G (paper's rule
                                          // would wrongly delete it)
}

TEST_F(DiffRulesTest, Diff2InsertRemovesFromG) {
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 10})));
  const VdpNode* g = vdp_.Find("G");
  Delta dm = MakeDelta("M(x, z)", {{Tuple({1, 99}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "M'", dm, StatesOf(states_)));
  EXPECT_EQ(dg.CountOf(Tuple({1})), -1);
}

TEST_F(DiffRulesTest, Diff2DeleteRestoresToG) {
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 10})));
  SQ_ASSERT_OK(states_["M'"].Insert(Tuple({1, 99})));
  const VdpNode* g = vdp_.Find("G");
  Delta dm = MakeDelta("M(x, z)", {{Tuple({1, 99}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "M'", dm, StatesOf(states_)));
  EXPECT_EQ(dg.CountOf(Tuple({1})), 1);
}

TEST_F(DiffRulesTest, Diff2IrrelevantWhenNotInLeft) {
  const VdpNode* g = vdp_.Find("G");
  Delta dm = MakeDelta("M(x, z)", {{Tuple({5, 50}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg,
                          FireEdgeRules(*g, "M'", dm, StatesOf(states_)));
  EXPECT_TRUE(dg.Empty());
}

TEST_F(DiffRulesTest, BagProjectionPresence) {
  // Two L' tuples project to the same x; deleting ONE must not remove x
  // from G (presence only changes when the projected count hits zero).
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 10})));
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 20})));
  const VdpNode* g = vdp_.Find("G");
  Delta dl1 = MakeDelta("L(x, y)", {{Tuple({1, 10}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg1,
                          FireEdgeRules(*g, "L'", dl1, StatesOf(states_)));
  EXPECT_TRUE(dg1.Empty());
  SQ_ASSERT_OK(ApplyDelta(&states_["L'"], dl1));
  // Deleting the second copy drops x=1 from G.
  Delta dl2 = MakeDelta("L(x, y)", {{Tuple({1, 20}), -1}});
  SQ_ASSERT_OK_AND_ASSIGN(Delta dg2,
                          FireEdgeRules(*g, "L'", dl2, StatesOf(states_)));
  EXPECT_EQ(dg2.CountOf(Tuple({1})), -1);
}

TEST_F(DiffRulesTest, BothSidesChangeSequential) {
  // Insert x=1 into L and into M in the same batch: net zero in G.
  const VdpNode* g = vdp_.Find("G");
  Relation g_before = EvalG();
  Delta dl = MakeDelta("L(x, y)", {{Tuple({1, 10}), 1}});
  Delta dm = MakeDelta("M(x, z)", {{Tuple({1, 99}), 1}});
  SQ_ASSERT_OK_AND_ASSIGN(
      Delta dg, FireAll(*g, &states_, {{"L'", dl}, {"M'", dm}}));
  SQ_ASSERT_OK(ApplyDelta(&g_before, dg));
  EXPECT_TRUE(g_before.EqualContents(EvalG()));
  EXPECT_TRUE(EvalG().Empty() || !EvalG().Contains(Tuple({1})));
}

TEST_F(DiffRulesTest, BothSidesDeleteSequentialReversed) {
  SQ_ASSERT_OK(states_["L'"].Insert(Tuple({1, 10})));
  SQ_ASSERT_OK(states_["M'"].Insert(Tuple({1, 99})));
  const VdpNode* g = vdp_.Find("G");
  Relation g_before = EvalG();  // empty: 1 is suppressed
  Delta dl = MakeDelta("L(x, y)", {{Tuple({1, 10}), -1}});
  Delta dm = MakeDelta("M(x, z)", {{Tuple({1, 99}), -1}});
  // Process M' first, then L' (the VDP's topological order can be either).
  SQ_ASSERT_OK_AND_ASSIGN(
      Delta dg, FireAll(*g, &states_, {{"M'", dm}, {"L'", dl}}));
  SQ_ASSERT_OK(ApplyDelta(&g_before, dg));
  EXPECT_TRUE(g_before.EqualContents(EvalG()));
  EXPECT_TRUE(EvalG().Empty());
}

TEST(UnionRulesTest, UnionAddsAndCancels) {
  VdpBuilder b;
  b.Leaf("L", "DB1", "L", "L(x)");
  b.Leaf("M", "DB2", "M", "M(x)");
  b.LeafParent("L'", "L", {"x"});
  b.LeafParent("M'", "M", {"x"});
  b.Union("U", {"L'", {"x"}, ""}, {"M'", {"x"}, ""}, true);
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, b.Build());
  const VdpNode* u = vdp.Find("U");
  std::map<std::string, Relation> states;
  states["L'"] = Relation(MakeSchema("X(x)"), Semantics::kBag);
  states["M'"] = Relation(MakeSchema("X(x)"), Semantics::kBag);
  Delta dl(MakeSchema("L(x)"));
  SQ_ASSERT_OK(dl.AddInsert(Tuple({1})));
  SQ_ASSERT_OK_AND_ASSIGN(Delta du,
                          FireEdgeRules(*u, "L'", dl, StatesOf(states)));
  EXPECT_EQ(du.CountOf(Tuple({1})), 1);
  // Union term selections filter.
  VdpBuilder b2;
  b2.Leaf("L", "DB1", "L", "L(x)");
  b2.LeafParent("L'", "L", {"x"});
  b2.LeafParent("L''", "L", {"x"});
  b2.Union("U", {"L'", {"x"}, "x < 5"}, {"L''", {"x"}, "x >= 5"}, true);
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp2, b2.Build());
  const VdpNode* u2 = vdp2.Find("U");
  Delta big(MakeSchema("L(x)"));
  SQ_ASSERT_OK(big.AddInsert(Tuple({9})));
  SQ_ASSERT_OK_AND_ASSIGN(Delta du2,
                          FireEdgeRules(*u2, "L'", big, StatesOf(states)));
  EXPECT_TRUE(du2.Empty());  // x=9 fails the L' term's filter
}

}  // namespace
}  // namespace squirrel
