#include "vdp/planner.h"

#include <gtest/gtest.h>

#include "relational/operators.h"
#include "relational/parser.h"
#include "testing/util.h"

namespace squirrel {
namespace {

using testing::MakeSchema;

PlannerInput Fig1Input() {
  PlannerInput input;
  input.scans["R"] = {"DB1", "R", MakeSchema("R(r1, r2, r3, r4) key(r1)")};
  input.scans["S"] = {"DB2", "S", MakeSchema("S(s1, s2, s3) key(s1)")};
  auto view = ParseAlgebra(
      "project[r1, r3, s1, s2](select[r4 = 100](R) join[r2 = s1] "
      "select[s3 < 50](S))");
  EXPECT_TRUE(view.ok());
  input.exports.push_back({"T", *view});
  return input;
}

TEST(PlannerTest, Figure1Decomposition) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(Fig1Input()));
  // Leaves R, S; leaf-parents R', S'; export T.
  EXPECT_TRUE(vdp.Contains("R"));
  EXPECT_TRUE(vdp.Contains("S"));
  EXPECT_TRUE(vdp.Contains("R'"));
  EXPECT_TRUE(vdp.Contains("S'"));
  EXPECT_TRUE(vdp.Find("T")->exported);
  // Selections were pushed into the leaf-parents.
  const VdpNode* rp = vdp.Find("R'");
  ASSERT_NE(rp, nullptr);
  EXPECT_FALSE(rp->def->terms()[0].SelectOrTrue()->IsTrueLiteral());
  // Projection narrowing: R' does not carry r4 (consumed by the selection).
  EXPECT_FALSE(rp->schema.Contains("r4"));
  EXPECT_TRUE(rp->schema.Contains("r2"));  // join attr kept
  // T's schema matches the view definition.
  EXPECT_EQ(vdp.Find("T")->schema.AttributeNames(),
            (std::vector<std::string>{"r1", "r3", "s1", "s2"}));
}

TEST(PlannerTest, PlannedVdpEvaluatesLikeView) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(Fig1Input()));
  // Evaluate bottom-up from concrete source relations and compare with a
  // direct evaluation of the algebra.
  Relation r = testing::MakeRelation(
      "R(r1, r2, r3, r4)",
      {Tuple({1, 100, 11, 100}), Tuple({2, 100, 22, 7}),
       Tuple({3, 200, 33, 100})});
  Relation s = testing::MakeRelation(
      "S(s1, s2, s3)", {Tuple({100, 5, 10}), Tuple({200, 6, 99})});
  std::map<std::string, Relation> states;
  for (const auto& name : vdp.TopoOrder()) {
    const VdpNode* node = vdp.Find(name);
    if (node->is_leaf) {
      states[name] = node->source_relation == "R" ? r : s;
      continue;
    }
    NodeStateFn fn = [&states](const std::string& child,
                               const std::vector<std::string>&)
        -> Result<std::shared_ptr<const Relation>> {
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                             &states.at(child));
    };
    SQ_ASSERT_OK_AND_ASSIGN(Relation contents, node->def->Evaluate(fn));
    states[name] = std::move(contents);
  }
  Catalog catalog;
  catalog.Register("R", &r);
  catalog.Register("S", &s);
  SQ_ASSERT_OK_AND_ASSIGN(Relation expect,
                          EvalAlgebra(Fig1Input().exports[0].definition,
                                      catalog));
  EXPECT_TRUE(states.at("T").ToSet().EqualContents(expect.ToSet()));
}

TEST(PlannerTest, SharedScanGetsDistinctLeafParents) {
  PlannerInput input;
  input.scans["R"] = {"DB1", "R", MakeSchema("R(a, b)")};
  SQ_ASSERT_OK_AND_ASSIGN(auto v1, ParseAlgebra("project[a](select[b = 1](R))"));
  SQ_ASSERT_OK_AND_ASSIGN(auto v2, ParseAlgebra("project[b](select[a = 2](R))"));
  input.exports.push_back({"X", v1});
  input.exports.push_back({"Y", v2});
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(input));
  // One leaf R; the two exports are distinct leaf-parents.
  EXPECT_EQ(vdp.LeafNames(), std::vector<std::string>{"R"});
  EXPECT_TRUE(vdp.Find("X")->exported);
  EXPECT_TRUE(vdp.Find("Y")->exported);
}

TEST(PlannerTest, IdenticalLeafParentsAreShared) {
  PlannerInput input;
  input.scans["R"] = {"DB1", "R", MakeSchema("R(a, b)")};
  input.scans["S"] = {"DB2", "S", MakeSchema("S(c)")};
  input.scans["U"] = {"DB3", "U", MakeSchema("U(d)")};
  SQ_ASSERT_OK_AND_ASSIGN(auto v1, ParseAlgebra("project[a, c](R join[a = c] S)"));
  SQ_ASSERT_OK_AND_ASSIGN(auto v2, ParseAlgebra("project[a, d](R join[a = d] U)"));
  input.exports.push_back({"X", v1});
  input.exports.push_back({"Y", v2});
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(input));
  // R is needed as π_a both times: a single R' should be reused.
  size_t r_parents = 0;
  for (const auto& name : vdp.DerivedNames()) {
    if (vdp.IsLeafParent(name)) {
      const VdpNode* n = vdp.Find(name);
      if (n->def->terms()[0].child == "R") ++r_parents;
    }
  }
  EXPECT_EQ(r_parents, 1u);
}

TEST(PlannerTest, DiffExport) {
  PlannerInput input;
  input.scans["L"] = {"DB1", "L", MakeSchema("L(x, y)")};
  input.scans["M"] = {"DB2", "M", MakeSchema("M(x, z)")};
  SQ_ASSERT_OK_AND_ASSIGN(
      auto view, ParseAlgebra("project[x](L) diff project[x](M)"));
  input.exports.push_back({"D", view});
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(input));
  const VdpNode* d = vdp.Find("D");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->def->kind(), NodeDef::Kind::kDiff);
  EXPECT_EQ(d->semantics(), Semantics::kSet);
  // Children are leaf-parents (restriction (a)), not the leaves directly.
  for (const auto& child : d->def->Children()) {
    EXPECT_FALSE(vdp.Find(child)->is_leaf) << child;
  }
}

TEST(PlannerTest, UnionUnderJoin) {
  PlannerInput input;
  input.scans["A"] = {"DB1", "A", MakeSchema("A(k, v)")};
  input.scans["B"] = {"DB1", "B", MakeSchema("B(k, v)")};
  input.scans["C"] = {"DB2", "C", MakeSchema("C(j, w)")};
  SQ_ASSERT_OK_AND_ASSIGN(
      auto view,
      ParseAlgebra("project[k, w]((A union B) join[k = j] C)"));
  input.exports.push_back({"X", view});
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(input));
  const VdpNode* x = vdp.Find("X");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->def->kind(), NodeDef::Kind::kSpj);
  // One child must be the compiled union node.
  bool has_union_child = false;
  for (const auto& child : x->def->Children()) {
    if (vdp.Find(child)->def &&
        vdp.Find(child)->def->kind() == NodeDef::Kind::kUnion) {
      has_union_child = true;
    }
  }
  EXPECT_TRUE(has_union_child);
}

TEST(PlannerTest, MultiClauseSelectSplitsAcrossCores) {
  PlannerInput input;
  input.scans["R"] = {"DB1", "R", MakeSchema("R(a, b)")};
  input.scans["S"] = {"DB2", "S", MakeSchema("S(c, d)")};
  SQ_ASSERT_OK_AND_ASSIGN(
      auto view,
      ParseAlgebra(
          "project[a, c](select[b > 1 AND d < 5 AND a < c](R join S))"));
  input.exports.push_back({"X", view});
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(input));
  const VdpNode* x = vdp.Find("X");
  // b > 1 pushed to R', d < 5 to S', a < c stays as the residual.
  EXPECT_FALSE(x->def->outer_select()->IsTrueLiteral());
  EXPECT_NE(x->def->outer_select()->ToString().find("<"),
            std::string::npos);
  for (const auto& name : vdp.DerivedNames()) {
    if (!vdp.IsLeafParent(name)) continue;
    const ChildTerm& term = vdp.Find(name)->def->terms()[0];
    EXPECT_FALSE(term.SelectOrTrue()->IsTrueLiteral()) << name;
  }
}

TEST(PlannerTest, UnboundScanFails) {
  PlannerInput input;
  SQ_ASSERT_OK_AND_ASSIGN(auto view, ParseAlgebra("project[a](Nope)"));
  input.exports.push_back({"X", view});
  EXPECT_FALSE(PlanVdp(input).ok());
}

TEST(SuggestAnnotationTest, HotSourceLeafParentGoesVirtual) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(Fig1Input()));
  AnnotationHints hints;
  hints.source_update_freq["DB1"] = 100.0;
  hints.source_update_freq["DB2"] = 0.01;
  Annotation ann = SuggestAnnotation(vdp, hints);
  EXPECT_TRUE(ann.FullyVirtual(vdp, "R'"));
  EXPECT_FALSE(ann.FullyVirtual(vdp, "S'"));
  SQ_ASSERT_OK(ann.Validate(vdp));
}

TEST(SuggestAnnotationTest, JoinNodeKeysStayMaterialized) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, PlanVdp(Fig1Input()));
  AnnotationHints hints;
  hints.hot_attrs["T"] = {};  // nothing hot: only keys stay
  Annotation ann = SuggestAnnotation(vdp, hints);
  EXPECT_TRUE(ann.IsMaterialized("T", "r1"));
  EXPECT_TRUE(ann.IsMaterialized("T", "s1"));
  EXPECT_FALSE(ann.IsMaterialized("T", "r3"));
  EXPECT_FALSE(ann.IsMaterialized("T", "s2"));
}

}  // namespace
}  // namespace squirrel
