#include "vdp/node_def.h"

#include <gtest/gtest.h>

#include <map>

#include "testing/util.h"
#include "vdp/builder.h"

namespace squirrel {
namespace {

using testing::MakeRelation;
using testing::MakeSchema;
using testing::Pred;

NodeStateFn StatesOf(const std::map<std::string, Relation>& states) {
  return [&states](const std::string& node, const std::vector<std::string>&)
             -> Result<std::shared_ptr<const Relation>> {
    auto it = states.find(node);
    if (it == states.end()) return Status::NotFound("no state for " + node);
    return std::shared_ptr<const Relation>(std::shared_ptr<void>(),
                                           &it->second);
  };
}

TEST(ChildTermTest, NeededAttrsUnionsProjectAndSelect) {
  ChildTerm term{"C", {"a", "b"}, Pred("c = 1 AND a > 0")};
  auto needed = term.NeededAttrs();
  EXPECT_EQ(needed, (std::vector<std::string>{"a", "b", "c"}));
  ChildTerm bare{"C", {"x"}, nullptr};
  EXPECT_EQ(bare.NeededAttrs(), std::vector<std::string>{"x"});
  EXPECT_TRUE(bare.SelectOrTrue()->IsTrueLiteral());
}

TEST(NodeDefTest, SpjInferSchemaLeftDeep) {
  NodeDef def = NodeDef::Spj(
      {{"L", {"a", "b"}, nullptr}, {"M", {"c"}, nullptr}},
      {Pred("b = c")}, {"a", "c"}, nullptr);
  auto lookup = [](const std::string& child) -> Result<Schema> {
    if (child == "L") return MakeSchema("L(a, b) key(a)");
    return MakeSchema("M(c, d) key(c)");
  };
  SQ_ASSERT_OK_AND_ASSIGN(Schema schema, def.InferSchema(lookup));
  EXPECT_EQ(schema.AttributeNames(), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(def.Children(), (std::vector<std::string>{"L", "M"}));
  EXPECT_EQ(def.semantics(), Semantics::kBag);
}

TEST(NodeDefTest, InferSchemaRejectsBadReferences) {
  auto lookup = [](const std::string&) -> Result<Schema> {
    return MakeSchema("L(a)");
  };
  // Selection on a missing attribute.
  NodeDef bad_sel =
      NodeDef::Spj({{"L", {"a"}, Pred("zzz = 1")}}, {}, {}, nullptr);
  EXPECT_FALSE(bad_sel.InferSchema(lookup).ok());
  // Join condition on a missing attribute.
  NodeDef bad_join = NodeDef::Spj(
      {{"L", {"a"}, nullptr}, {"L", {"a"}, nullptr}}, {Pred("q = 1")},
      {}, nullptr);
  EXPECT_FALSE(bad_join.InferSchema(lookup).ok());
  // Wrong join-condition count.
  NodeDef bad_count =
      NodeDef::Spj({{"L", {"a"}, nullptr}}, {Pred("a = 1")}, {}, nullptr);
  EXPECT_FALSE(bad_count.InferSchema(lookup).ok());
}

TEST(NodeDefTest, UnionTermsMustProjectSameNames) {
  auto lookup = [](const std::string& child) -> Result<Schema> {
    if (child == "L") return MakeSchema("L(a)");
    return MakeSchema("M(b)");
  };
  NodeDef def = NodeDef::Union2({"L", {"a"}, nullptr}, {"M", {"b"}, nullptr});
  EXPECT_FALSE(def.InferSchema(lookup).ok());
}

TEST(NodeDefTest, EvaluateSpjWithOuterOps) {
  std::map<std::string, Relation> states;
  states["L"] = MakeRelation("L(a, b)", {Tuple({1, 7}), Tuple({2, 8})});
  states["M"] = MakeRelation("M(c, d)", {Tuple({7, 70}), Tuple({8, 99})});
  NodeDef def = NodeDef::Spj(
      {{"L", {"a", "b"}, nullptr}, {"M", {"c", "d"}, nullptr}},
      {Pred("b = c")}, {"a", "d"}, Pred("d < 90"));
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, def.Evaluate(StatesOf(states)));
  EXPECT_EQ(testing::Rows(out), "(1, 70) ");
}

TEST(NodeDefTest, EvaluateDiffIsSet) {
  std::map<std::string, Relation> states;
  states["L"] = MakeRelation("L(x)", {Tuple({1}), Tuple({2})});
  states["M"] = MakeRelation("M(x)", {Tuple({2})});
  NodeDef def = NodeDef::Diff2({"L", {"x"}, nullptr}, {"M", {"x"}, nullptr});
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, def.Evaluate(StatesOf(states)));
  EXPECT_EQ(out.semantics(), Semantics::kSet);
  EXPECT_EQ(testing::Rows(out), "(1) ");
  EXPECT_EQ(def.semantics(), Semantics::kSet);
}

TEST(NodeDefTest, EvalTermPassThroughAvoidsWork) {
  Relation state = MakeRelation("C(a, b)", {Tuple({1, 2})});
  ChildTerm pass{"C", {"a", "b"}, nullptr};
  SQ_ASSERT_OK_AND_ASSIGN(Relation out, EvalTerm(state, pass));
  EXPECT_TRUE(out.EqualContents(state));
  ChildTerm narrowed{"C", {"b"}, Pred("a = 1")};
  SQ_ASSERT_OK_AND_ASSIGN(Relation out2, EvalTerm(state, narrowed));
  EXPECT_EQ(testing::Rows(out2), "(2) ");
}

TEST(NodeDefTest, ToStringShowsStructure) {
  NodeDef def = NodeDef::Spj(
      {{"R'", {"r1", "r2"}, nullptr}, {"S'", {"s1"}, nullptr}},
      {Pred("r2 = s1")}, {"r1", "s1"}, nullptr);
  std::string s = def.ToString();
  EXPECT_NE(s.find("join[(r2 = s1)]"), std::string::npos);
  EXPECT_NE(s.find("project[r1,s1]"), std::string::npos);
  NodeDef diff =
      NodeDef::Diff2({"E", {"a"}, nullptr}, {"F", {"a"}, nullptr});
  EXPECT_NE(diff.ToString().find(" diff "), std::string::npos);
  NodeDef un = NodeDef::Union2({"E", {"a"}, nullptr}, {"F", {"a"}, nullptr});
  EXPECT_NE(un.ToString().find(" union "), std::string::npos);
}

TEST(VdpBuilderTest, ErrorsStickUntilBuild) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a,");  // malformed schema
  b.LeafParent("R'", "R", {"a"});
  auto result = b.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(VdpBuilderTest, BadPredicateReported) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a)");
  b.LeafParent("R'", "R", {"a"}, "a = ");
  EXPECT_FALSE(b.Build().ok());
}

TEST(VdpBuilderTest, ExportMarking) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a)");
  b.LeafParent("R'", "R", {"a"});
  b.Export("R'");
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, b.Build());
  EXPECT_TRUE(vdp.Find("R'")->exported);
}

}  // namespace
}  // namespace squirrel
