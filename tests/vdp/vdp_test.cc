#include "vdp/vdp.h"

#include <gtest/gtest.h>

#include "testing/util.h"
#include "vdp/builder.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace {

TEST(VdpTest, Figure1Structure) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  EXPECT_EQ(vdp.NodeCount(), 5u);
  EXPECT_EQ(vdp.LeafNames(), (std::vector<std::string>{"R", "S"}));
  EXPECT_EQ(vdp.ExportNames(), std::vector<std::string>{"T"});
  EXPECT_TRUE(vdp.IsLeafParent("R'"));
  EXPECT_TRUE(vdp.IsLeafParent("S'"));
  EXPECT_FALSE(vdp.IsLeafParent("T"));
  EXPECT_EQ(vdp.Parents("R'"), std::vector<std::string>{"T"});
  EXPECT_EQ(vdp.Parents("R"), std::vector<std::string>{"R'"});
  const VdpNode* t = vdp.Find("T");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->schema.AttributeNames(),
            (std::vector<std::string>{"r1", "r3", "s1", "s2"}));
}

TEST(VdpTest, Figure4Structure) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure4Vdp());
  EXPECT_EQ(vdp.LeafNames().size(), 4u);
  EXPECT_EQ(vdp.ExportNames(), (std::vector<std::string>{"E", "G"}));
  const VdpNode* g = vdp.Find("G");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->def->kind(), NodeDef::Kind::kDiff);
  EXPECT_EQ(g->semantics(), Semantics::kSet);
  const VdpNode* e = vdp.Find("E");
  EXPECT_EQ(e->semantics(), Semantics::kBag);
  // E's key is inherited from A' and B' through the projection.
  EXPECT_EQ(e->schema.key(), (std::vector<std::string>{"a1", "b1"}));
}

TEST(VdpTest, ChildrenMustExistFirst) {
  Vdp vdp;
  ChildTerm term{"nonexistent", {"a"}, nullptr};
  EXPECT_FALSE(
      vdp.AddDerived("X", NodeDef::Spj({term}, {}, {}, nullptr)).ok());
}

TEST(VdpTest, DuplicateNamesRejected) {
  Vdp vdp;
  SQ_ASSERT_OK(vdp.AddLeaf("R", "DB", "R", testing::MakeSchema("R(a)")));
  EXPECT_FALSE(
      vdp.AddLeaf("R", "DB", "R", testing::MakeSchema("R(a)")).ok());
}

TEST(VdpTest, LeafParentRestrictionEnforced) {
  // A node over a leaf may only project/select (§5.1 restriction (a)).
  Vdp vdp;
  SQ_ASSERT_OK(vdp.AddLeaf("R", "DB", "R", testing::MakeSchema("R(a)")));
  SQ_ASSERT_OK(vdp.AddLeaf("S", "DB", "S", testing::MakeSchema("S(b)")));
  ChildTerm tr{"R", {"a"}, nullptr};
  ChildTerm ts{"S", {"b"}, nullptr};
  // Join of two leaves: not allowed.
  EXPECT_FALSE(
      vdp.AddDerived("X", NodeDef::Spj({tr, ts}, {Expr::True()}, {}, nullptr))
          .ok());
  // Pure project/select: allowed.
  SQ_ASSERT_OK(vdp.AddDerived("R'", NodeDef::Spj({tr}, {}, {}, nullptr)));
}

TEST(VdpTest, MaximalNodesMustBeExported) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a)");
  b.LeafParent("R'", "R", {"a"});
  // R' is maximal but not exported.
  EXPECT_FALSE(b.Build().ok());
}

TEST(VdpTest, MarkExportedRejectsLeaves) {
  Vdp vdp;
  SQ_ASSERT_OK(vdp.AddLeaf("R", "DB", "R", testing::MakeSchema("R(a)")));
  EXPECT_FALSE(vdp.MarkExported("R").ok());
  EXPECT_FALSE(vdp.MarkExported("missing").ok());
}

TEST(VdpTest, TopoOrderChildrenFirst) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure4Vdp());
  const auto& order = vdp.TopoOrder();
  auto pos = [&](const std::string& n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos("A"), pos("A'"));
  EXPECT_LT(pos("A'"), pos("E"));
  EXPECT_LT(pos("E"), pos("G"));
  EXPECT_LT(pos("F"), pos("G"));
}

TEST(VdpTest, FindLeafBySource) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  const VdpNode* leaf = vdp.FindLeaf("DB1", "R");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->name, "R");
  EXPECT_EQ(vdp.FindLeaf("DB1", "nope"), nullptr);
}

TEST(VdpTest, ToDotMentionsAllNodes) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  std::string dot = vdp.ToDot("fig1");
  for (const auto& name : vdp.TopoOrder()) {
    EXPECT_NE(dot.find("\"" + name + "\""), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // export T
  EXPECT_NE(dot.find("shape=box"), std::string::npos);     // leaves
}

TEST(VdpTest, SchemaInferenceRejectsBadConditions) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a, b)");
  b.LeafParent("R'", "R", {"a"}, "zzz = 1");  // unknown attr in select
  EXPECT_FALSE(b.Build().ok());
}

TEST(VdpTest, UnionTermsMustAlign) {
  VdpBuilder b;
  b.Leaf("R", "DB", "R", "R(a, b)");
  b.Leaf("S", "DB", "S", "S(c, d)");
  b.LeafParent("R'", "R", {"a", "b"});
  b.LeafParent("S'", "S", {"c", "d"});
  b.Union("U", {"R'", {"a"}, ""}, {"S'", {"c"}, ""}, true);
  EXPECT_FALSE(b.Build().ok());  // attr names differ: a vs c
}

TEST(AnnotationTest, DefaultsMaterialized) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  Annotation ann;
  EXPECT_TRUE(ann.FullyMaterialized(vdp, "T"));
  EXPECT_FALSE(ann.IsHybrid(vdp, "T"));
  EXPECT_EQ(ann.MaterializedAttrs(vdp, "T").size(), 4u);
}

TEST(AnnotationTest, Example23Annotation) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  Annotation ann = AnnotationExample23(vdp);
  EXPECT_TRUE(ann.IsHybrid(vdp, "T"));
  EXPECT_TRUE(ann.FullyVirtual(vdp, "R'"));
  EXPECT_TRUE(ann.FullyVirtual(vdp, "S'"));
  EXPECT_EQ(ann.MaterializedAttrs(vdp, "T"),
            (std::vector<std::string>{"r1", "s1"}));
  EXPECT_EQ(ann.VirtualAttrs(vdp, "T"),
            (std::vector<std::string>{"r3", "s2"}));
  SQ_ASSERT_OK(ann.Validate(vdp));
  EXPECT_EQ(ann.NodeToString(vdp, "T"), "T[r1^m, r3^v, s1^m, s2^v]");
}

TEST(AnnotationTest, SetFromSpecRejectsBadInput) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  Annotation ann;
  EXPECT_FALSE(ann.SetFromSpec(vdp, "T", "r1 x").ok());
  EXPECT_FALSE(ann.SetFromSpec(vdp, "T", "zzz m").ok());
  EXPECT_FALSE(ann.SetFromSpec(vdp, "NoSuchNode", "r1 m").ok());
}

TEST(AnnotationTest, ValidateRejectsLeafAnnotation) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure1Vdp());
  Annotation ann;
  ann.Set("R", "r1", AttrMode::kVirtual);
  EXPECT_FALSE(ann.Validate(vdp).ok());
}

TEST(AnnotationTest, HybridDiffNodeRejected) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure4Vdp());
  Annotation ann;
  ann.Set("G", "a1", AttrMode::kVirtual);  // G hybrid: a1 virtual, b1 mat
  EXPECT_FALSE(ann.Validate(vdp).ok());
  // Fully virtual difference node is fine.
  Annotation ok;
  SQ_ASSERT_OK(ok.SetAll(vdp, "G", AttrMode::kVirtual));
  SQ_ASSERT_OK(ok.Validate(vdp));
}

TEST(AnnotationTest, Example51Annotation) {
  SQ_ASSERT_OK_AND_ASSIGN(Vdp vdp, BuildFigure4Vdp());
  Annotation ann = AnnotationExample51(vdp);
  SQ_ASSERT_OK(ann.Validate(vdp));
  EXPECT_TRUE(ann.FullyVirtual(vdp, "B'"));
  EXPECT_TRUE(ann.FullyVirtual(vdp, "F"));
  EXPECT_TRUE(ann.IsHybrid(vdp, "E"));
  EXPECT_EQ(ann.MaterializedAttrs(vdp, "E"),
            (std::vector<std::string>{"a1", "b1"}));
}

}  // namespace
}  // namespace squirrel
