// A direct (no-simulator) harness around LocalStore/Vap/Iup/QueryProcessor:
// polls hit the SourceDbs synchronously and Eager Compensation is driven by
// the in-flight batch (the source is committed before propagation, exactly
// the situation ECA exists for).

#ifndef SQUIRREL_TESTS_TESTING_HARNESS_H_
#define SQUIRREL_TESTS_TESTING_HARNESS_H_

#include <map>
#include <memory>
#include <string>

#include "delta/delta_algebra.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/query_processor.h"
#include "mediator/vap.h"
#include "relational/operators.h"
#include "source/source_db.h"
#include "vdp/annotation.h"
#include "vdp/vdp.h"

namespace squirrel {
namespace testing {

class DirectHarness {
 public:
  DirectHarness(Vdp vdp, Annotation ann,
                std::map<std::string, SourceDb*> sources,
                VapStrategy strategy = VapStrategy::kAuto)
      : vdp_(std::move(vdp)),
        ann_(std::move(ann)),
        sources_(std::move(sources)),
        store_(&vdp_, &ann_),
        vap_(&vdp_, &ann_, &store_, strategy),
        iup_(&vdp_, &ann_, &store_, &vap_),
        qp_(&vdp_, &ann_, &store_, &vap_) {}

  const Vdp& vdp() const { return vdp_; }
  const Annotation& annotation() const { return ann_; }
  LocalStore& store() { return store_; }
  Vap& vap() { return vap_; }
  Iup& iup() { return iup_; }
  QueryProcessor& qp() { return qp_; }

  /// Recomputes a node's full contents from current source states.
  Result<Relation> RecomputeNode(const std::string& name) {
    SQ_ASSIGN_OR_RETURN(const VdpNode* node, vdp_.Get(name));
    if (node->is_leaf) {
      auto sit = sources_.find(node->source_db);
      if (sit == sources_.end()) {
        return Status::NotFound("no source " + node->source_db);
      }
      return sit->second->Query(node->source_relation,
                                node->schema.AttributeNames(), nullptr);
    }
    NodeStateFn states =
        [this](const std::string& child, const std::vector<std::string>&)
        -> Result<std::shared_ptr<const Relation>> {
      SQ_ASSIGN_OR_RETURN(Relation rel, RecomputeNode(child));
      return std::make_shared<const Relation>(std::move(rel));
    };
    return node->def->Evaluate(states);
  }

  /// Loads all repositories from the current source states.
  Status Load() {
    for (const auto& name : store_.MaterializedNodes()) {
      SQ_ASSIGN_OR_RETURN(Relation full, RecomputeNode(name));
      auto mat = ann_.MaterializedAttrs(vdp_, name);
      SQ_ASSIGN_OR_RETURN(Relation projected,
                          OpProject(full, mat, Semantics::kBag));
      if (vdp_.Find(name)->semantics() == Semantics::kSet) {
        projected = projected.ToSet();
      }
      SQ_RETURN_IF_ERROR(store_.SetRepo(name, std::move(projected)));
    }
    return Status::OK();
  }

  /// Synchronous poll function hitting the sources directly.
  Vap::PollFn DirectPoll() {
    return [this](const std::string& source,
                  const PollSpec& spec) -> Result<Relation> {
      ++polls_;
      auto sit = sources_.find(source);
      if (sit == sources_.end()) {
        return Status::NotFound("no source " + source);
      }
      return sit->second->Query(spec.relation, spec.attrs, spec.cond);
    };
  }

  /// Commits \p delta at \p source and propagates it (general IUP with
  /// in-flight compensation, since polls see the post-commit state).
  Result<IupStats> CommitAndPropagate(const std::string& source, Time now,
                                      const MultiDelta& delta) {
    auto sit = sources_.find(source);
    if (sit == sources_.end()) {
      return Status::NotFound("no source " + source);
    }
    SQ_RETURN_IF_ERROR(sit->second->Commit(now, delta));
    // Build leaf deltas.
    std::map<std::string, Delta> leaf_deltas;
    for (const auto& rel : delta.RelationNames()) {
      const VdpNode* leaf = vdp_.FindLeaf(source, rel);
      if (leaf == nullptr) continue;
      SQ_ASSIGN_OR_RETURN(
          Delta narrowed,
          DeltaProject(*delta.Find(rel), leaf->schema.AttributeNames()));
      auto [it, inserted] =
          leaf_deltas.try_emplace(leaf->name, Delta(leaf->schema));
      (void)inserted;
      SQ_RETURN_IF_ERROR(it->second.SmashInPlace(narrowed));
    }
    // In-flight compensation: polls reflect the already-committed delta.
    Vap::CompensationFn comp =
        [source, &delta](const std::string& poll_source,
                         const std::string& relation,
                         const Schema& schema) -> Result<Delta> {
      Delta out(schema);
      if (poll_source != source) return out;
      const Delta* d = delta.Find(relation);
      if (d != nullptr) SQ_RETURN_IF_ERROR(out.SmashInPlace(*d));
      return out;
    };
    return iup_.ProcessBatch(leaf_deltas, DirectPoll(), comp);
  }

  /// Verifies every repository equals the materialized projection of a
  /// fresh recomputation; returns an error describing the first mismatch.
  Status VerifyRepos() {
    for (const auto& name : store_.MaterializedNodes()) {
      SQ_ASSIGN_OR_RETURN(Relation full, RecomputeNode(name));
      auto mat = ann_.MaterializedAttrs(vdp_, name);
      SQ_ASSIGN_OR_RETURN(Relation expect,
                          OpProject(full, mat, Semantics::kBag));
      SQ_ASSIGN_OR_RETURN(const Relation* repo, store_.Repo(name));
      if (!expect.EqualContents(*repo)) {
        return Status::Internal("repository drift at node " + name +
                                "\n got: " + repo->ToString(name) +
                                "\nwant: " + expect.ToString(name));
      }
    }
    return Status::OK();
  }

  uint64_t polls() const { return polls_; }
  void reset_polls() { polls_ = 0; }

 private:
  Vdp vdp_;
  Annotation ann_;
  std::map<std::string, SourceDb*> sources_;
  LocalStore store_;
  Vap vap_;
  Iup iup_;
  QueryProcessor qp_;
  uint64_t polls_ = 0;
};

}  // namespace testing
}  // namespace squirrel

#endif  // SQUIRREL_TESTS_TESTING_HARNESS_H_
