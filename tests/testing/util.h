// Shared helpers for the Squirrel test suite.

#ifndef SQUIRREL_TESTS_TESTING_UTIL_H_
#define SQUIRREL_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/parser.h"
#include "relational/relation.h"

namespace squirrel {
namespace testing {

/// Asserts a Status is OK, printing it otherwise.
#define SQ_ASSERT_OK(expr)                                \
  do {                                                    \
    ::squirrel::Status sq_st_ = (expr);                   \
    ASSERT_TRUE(sq_st_.ok()) << sq_st_.ToString();        \
  } while (0)

#define SQ_EXPECT_OK(expr)                                \
  do {                                                    \
    ::squirrel::Status sq_st_ = (expr);                   \
    EXPECT_TRUE(sq_st_.ok()) << sq_st_.ToString();        \
  } while (0)

/// Unwraps a Result<T>, asserting success.
#define SQ_ASSERT_OK_AND_ASSIGN(lhs, expr)                 \
  SQ_ASSERT_OK_AND_ASSIGN_IMPL_(                           \
      SQ_CONCAT_(sq_test_res_, __LINE__), lhs, expr)

#define SQ_ASSERT_OK_AND_ASSIGN_IMPL_(tmp, lhs, expr)      \
  auto tmp = (expr);                                       \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();        \
  lhs = std::move(tmp).value()

/// Parses a schema declaration or dies.
inline Schema MakeSchema(const std::string& decl) {
  auto parsed = ParseSchemaDecl(decl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed->schema : Schema();
}

/// Builds a relation from a schema declaration and rows.
inline Relation MakeRelation(const std::string& decl,
                             const std::vector<Tuple>& rows,
                             Semantics semantics = Semantics::kSet) {
  Relation rel(MakeSchema(decl), semantics);
  for (const auto& t : rows) {
    auto st = rel.Insert(t);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return rel;
}

/// Parses a predicate or dies.
inline Expr::Ptr Pred(const std::string& text) {
  auto parsed = ParsePredicate(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : Expr::True();
}

/// Sorted-row rendering for golden comparisons.
inline std::string Rows(const Relation& rel) {
  std::string out;
  for (const auto& [tuple, count] : rel.SortedRows()) {
    out += tuple.ToString();
    if (count != 1) out += "x" + std::to_string(count);
    out += " ";
  }
  return out;
}

}  // namespace testing
}  // namespace squirrel

#endif  // SQUIRREL_TESTS_TESTING_UTIL_H_
