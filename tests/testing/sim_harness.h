// Reusable fault-injection simulation harness.
//
// RunFaultSim derives everything — a Figure-1-shaped VDP with random
// structural variations, a safe random annotation, per-source fault plans
// (delay jitter, drop/retransmit, duplicates, crash windows, slow polls),
// delay configuration, and a keyed update/query workload — from one seed,
// runs the mediator to quiescence, and then checks that
//   (1) every export relation equals a from-scratch recomputation over the
//       final source states,
//   (2) the whole trace passes the independent consistency checker, and
//   (3) the run produced a deterministic rendering (trace_dump) that a
//       replay of the same seed must reproduce byte for byte.
// Every error message names the seed so a failing schedule can be replayed
// in isolation (see DESIGN.md "Fault model & determinism").

#ifndef SQUIRREL_TESTS_TESTING_SIM_HARNESS_H_
#define SQUIRREL_TESTS_TESTING_SIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mediator/mediator.h"

namespace squirrel {
namespace testing {

struct FaultSimOptions {
  int steps = 30;      ///< workload events (commits + queries)
  Time drain = 300.0;  ///< quiescence horizon after the last event
  // ---- mediator durability & crash/restart (PR: crash recovery) ----
  /// Give the mediator an in-memory log device (checkpoints + WAL).
  bool durability = false;
  /// False = checkpoint-only mode (demonstrably lossy; tests use this to
  /// prove the WAL is load-bearing).
  bool wal = true;
  /// Update commits between periodic checkpoints.
  uint64_t checkpoint_every = 4;
  /// Seeded mediator crash/recover windows inside the workload horizon:
  /// the mediator is killed at each window's start and recovered at its
  /// end. Requires durability. The windows are shared with every source's
  /// fault injector so source->mediator traffic is ARQ-deferred past them.
  int mediator_crashes = 0;
  /// >= 0: one atomic Crash()+Recover() right after the WAL record with
  /// this LSN is appended (the crash-point sweep). Requires durability.
  int64_t crash_at_wal_record = -1;
  // ---- incremental indexes & delta batching (PR: index/batch layer) ----
  /// Maintain persistent repository indexes (MediatorOptions::use_indexes).
  bool use_indexes = true;
  /// Update-queue coalescing window (MediatorOptions::coalesce_window).
  Time coalesce_window = 0.0;
  /// Scales the gaps between workload events; < 1 packs commits tightly so
  /// same-source announcements can land inside the coalescing window while
  /// earlier ones still sit in the queue.
  double event_gap_scale = 1.0;
  // ---- source crash/restart & resync (PR: source epochs + anti-entropy) --
  /// Up to this many crash/restart windows per source: the source is dead
  /// for the window and restarts (epoch bump, announcer state lost) at its
  /// end. Drawn from a DEDICATED rng stream so turning restarts on does not
  /// perturb the channel/mediator fault schedules or the workload of the
  /// same seed (pinned by a harness test).
  int source_restarts = 0;
  /// MediatorOptions::degraded_reads — serve stale annotated answers while
  /// a needed source is down instead of failing with kUnavailable.
  bool degraded_reads = false;
  /// MediatorOptions::max_queue_depth (backpressure cap during resync).
  size_t max_queue_depth = 0;
  /// Fail the run if any source ends quarantined or not healthy after the
  /// drain + final queries (the resync sweep's no-permanent-outage check).
  bool require_all_healthy = false;
  // ---- concurrent mediator (PR: MVCC reads + parallel IUP) ----
  /// > 0: run the IUP kernel's rule firings on this many pool workers.
  /// The concurrent-equivalence sweep asserts a threaded run's trace is
  /// byte-identical to the serial (iup_threads = 0) oracle per seed.
  int iup_threads = 0;
  /// Nonzero: seeded worker-scheduling perturbation (yields/sleeps) to
  /// shake out ordering assumptions; results must not change.
  uint64_t iup_perturb_seed = 0;
  /// MediatorOptions::mvcc_reads — poll-free queries served lock-free from
  /// the latest committed store snapshot instead of the transaction queue.
  /// Changes query scheduling (trace dumps are NOT comparable to the
  /// serialized baseline) but never update outcomes or final exports.
  bool mvcc_reads = false;
  // ---- execution engine (PR: columnar batch execution) ----
  /// Run relational kernels through the columnar engine. The harness pins
  /// the size threshold to 0 for the whole run, so even the small sim
  /// relations exercise the columnar kernels; traces and exports must be
  /// byte-identical to a columnar = false run of the same seed.
  bool columnar = true;
  // ---- storage integrity & disk faults (PR: storage integrity layer) ----
  /// Which lying-disk fault the WAL device injects (see FaultyLogDevice).
  /// Anything but kNone wraps the in-memory device in a seeded
  /// FaultyLogDevice and turns on paranoid resync-on-recovery (a dropped
  /// log tail is undetectable, so only a snapshot pull rules out silent
  /// divergence). Requires durability.
  enum class StorageFault {
    kNone = 0,
    kTornAppend,        ///< a prefix of one record reaches the platter
    kBitFlip,           ///< one stored bit inverts
    kFsyncDrop,         ///< acked append never persisted
    kEnospc,            ///< a window of appends fails honestly
    kCheckpointCorrupt  ///< bit flip targeted at checkpoint frames
  };
  StorageFault storage_fault = StorageFault::kNone;
  /// Fault-event budget of the lying disk (an ENOSPC window counts once).
  int storage_max_faults = 2;
  /// Schedule one atomic Crash()+Recover() mid-drain, after all workload
  /// events: the recovery that actually READS the damaged log. Requires
  /// durability. Without it a lying disk is only exercised if the seed
  /// also schedules mediator crash windows.
  bool final_crash_recover = false;
  /// FaultPlan::snapshot_corrupt_prob — in-transit snapshot payload
  /// corruption the mediator must detect by checksum and re-request.
  double snapshot_corrupt_prob = 0;
  // ---- sharded deployment (PR: mediator-as-a-source composition) ----
  /// How the seed's scenario is deployed. kSingle is the classic one-mediator
  /// run. kTwoShard splits the VDP into a child shard plus a root consuming
  /// the child's exports through an ExportAnnouncer mirror; kThreeTier adds a
  /// pass-through middle tier. The SCENARIO (sources, VDP, annotation, fault
  /// schedules, workload) is drawn identically for every topology — only the
  /// deployment differs — so final_exports must be byte-identical across
  /// topologies of the same seed. Sharded-only randomness (mirror-link
  /// faults, child crash windows) draws from a dedicated rng stream.
  enum class Topology { kSingle = 0, kTwoShard, kThreeTier };
  Topology topology = Topology::kSingle;
  // ---- overload protection (PR: deadlines/admission/memory budgets) ----
  /// > 0: inject this many EXTRA storm queries against the root mediator,
  /// drawn from a DEDICATED rng stream so the baseline workload and fault
  /// schedules are byte-identical with the storm off (the no-overload
  /// oracle of the overload sweep). Storm outcomes are tallied separately
  /// (storm_* result fields) and never count as workload failures.
  int query_storm = 0;
  /// Relative deadline stamped on every storm query (absolute deadline =
  /// submit time + this); 0 = none. Workload queries stay deadline-free.
  Time query_deadline = 0;
  /// Per-class admission limits for kInteractive and kBatch on EVERY
  /// mediator of the deployment (0 = unlimited). kInternal is never capped:
  /// the harness's final correctness queries must always run.
  uint32_t admit_max_active = 0;
  uint32_t admit_max_queued = 0;
  /// Process-global memory budget for the run (bytes; 0 = off). Hard-limit
  /// cancellations require iup_threads = 0 setups in the sweeps only for
  /// determinism of WHICH query dies; accounting itself is thread-safe.
  size_t memory_soft_limit = 0;
  size_t memory_hard_limit = 0;
  /// Poll-timeout backoff ceiling and seeded jitter (MediatorOptions
  /// passthrough; jitter seed = the run seed, so replays agree).
  Time poll_backoff_cap = 0;
  double poll_jitter = 0;
};

/// What one seeded schedule produced (for assertions and reporting).
struct FaultSimResult {
  uint64_t seed = 0;
  /// Deterministic rendering of the mediator trace plus summary counters;
  /// the replay-identity check compares these strings.
  std::string trace_dump;
  MediatorStats stats;
  uint64_t exports_checked = 0;
  uint64_t queries_ok = 0;
  /// Mid-run queries that failed over with kUnavailable (legal under
  /// faults; any other failure is an error).
  uint64_t queries_failed = 0;
  // Summed fault-injector counters across sources.
  uint64_t transmissions_lost = 0;
  uint64_t duplicates = 0;
  uint64_t blackholed = 0;
  uint64_t slow_polls = 0;
  uint64_t mediator_retransmits = 0;  ///< deliveries pushed past a dead mediator
  // Durability / crash-recovery observability.
  uint64_t mediator_crashes = 0;
  uint64_t recoveries = 0;
  uint64_t recovery_txns_replayed = 0;
  uint64_t recovery_txns_rolled_back = 0;
  uint64_t recovery_msgs_requeued = 0;
  uint64_t wal_records = 0;  ///< records ever appended (= exclusive max LSN)
  uint64_t checkpoints = 0;
  /// Update messages merged into a queue tail (delta batching).
  uint64_t coalesced_msgs = 0;
  /// Deterministic rendering of the final export relations; a crash-point
  /// run must produce exactly the crash-free baseline's string.
  std::string final_exports;
  // Source restart / resync observability.
  uint64_t source_restarts = 0;   ///< epoch bumps across all sources
  uint64_t epoch_bumps = 0;       ///< new incarnations the mediator observed
  uint64_t resyncs_started = 0;
  uint64_t resyncs_completed = 0;
  uint64_t snapshots_requested = 0;
  uint64_t updates_dropped_resync = 0;
  uint64_t updates_shed = 0;      ///< backpressure merges
  uint64_t requarantines = 0;
  /// Mid-run queries answered in degraded mode (stale + annotated).
  uint64_t queries_degraded = 0;
  /// Deterministic rendering of the NON-restart fault schedule (jitter,
  /// drop/dup probabilities, source crash windows, mediator windows) plus
  /// the workload horizon. Must be byte-identical between a run with
  /// source_restarts = 0 and one with restarts on (dedicated-rng pin).
  std::string fault_plan_dump;
  // Storage integrity observability.
  /// True iff a recovery refused the log as unrecoverable (kCorrupted).
  /// The run then ends early — corrupted_diag and trace_dump are filled,
  /// the quiescence/export checks are skipped (there is no mediator state
  /// left to check) — and the CALLER decides whether corruption was legal
  /// for the fault plan. Silent divergence is never an outcome.
  bool corrupted = false;
  /// The kCorrupted status message (names the damaged LSN / slot).
  std::string corrupted_diag;
  uint64_t storage_faults_injected = 0;  ///< lying-disk events that fired
  uint64_t wal_append_failures = 0;
  uint64_t updates_dropped_wal = 0;
  uint64_t recovery_tail_repairs = 0;
  uint64_t recovery_checkpoint_fallbacks = 0;
  uint64_t resyncs_after_recovery = 0;
  uint64_t update_checksum_failures = 0;
  uint64_t snapshot_checksum_failures = 0;
  uint64_t payloads_corrupted = 0;  ///< injector-corrupted snapshot payloads
  // Sharded-deployment observability (kSingle runs leave these zero).
  uint64_t shards = 0;              ///< mediators in the deployment
  uint64_t commits_mirrored = 0;    ///< child commits re-announced by mirrors
  uint64_t corrective_commits = 0;  ///< mirror re-bases after child recovery
  /// Every MediatorStats counter of every mediator, rendered name=value per
  /// line (per-shard sections in sharded runs). Compared byte-for-byte by
  /// the replay-identity checks: a counter that silently drifts between a
  /// run and its replay — e.g. one reset by Recover() instead of preserved —
  /// shows up here even if no export diverges.
  std::string stats_dump;
  // Overload-protection observability (zero without query_storm / budgets).
  uint64_t storm_queries = 0;            ///< storm queries injected
  uint64_t storm_ok = 0;                 ///< answered fresh
  uint64_t storm_degraded = 0;           ///< answered stale + annotated
  uint64_t storm_deadline_exceeded = 0;  ///< typed kDeadlineExceeded
  uint64_t storm_rejected_overload = 0;  ///< typed kOverloaded (admission/mem)
  uint64_t storm_unavailable = 0;        ///< typed kUnavailable (faults)
  /// Storm queries resolved AFTER their deadline passed (sweep invariant:
  /// always 0 — a deadline is resolved the event-loop step it expires).
  uint64_t storm_late = 0;
  /// Storm queries that terminated with a status outside the typed overload
  /// / fault set (sweep invariant: always 0 — no silent failures).
  uint64_t storm_untyped = 0;
  /// Per-storm-query latency (resolution time - submit time), resolution
  /// order. The overload bench derives p50/p99 and goodput from these.
  std::vector<Time> storm_latencies;
  uint64_t budget_peak = 0;          ///< memory budget high-water (bytes)
  uint64_t budget_hard_cancels = 0;  ///< hard-limit query cancellations
};

/// Runs one seeded fault schedule end to end. Returns an error naming the
/// seed on any inconsistency.
Result<FaultSimResult> RunFaultSim(uint64_t seed,
                                   const FaultSimOptions& opts = {});

}  // namespace testing
}  // namespace squirrel

#endif  // SQUIRREL_TESTS_TESTING_SIM_HARNESS_H_
