#include "testing/sim_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/rng.h"
#include "common/strings.h"
#include "mediator/consistency.h"
#include "mediator/durability/faulty_log_device.h"
#include "mediator/durability/log_device.h"
#include "mediator/export_announcer.h"
#include "mediator/shard_plan.h"
#include "relational/columnar.h"
#include "relational/parser.h"
#include "sim/fault.h"
#include "sim/scheduler.h"
#include "source/source_db.h"
#include "vdp/builder.h"

namespace squirrel {
namespace testing {
namespace {

std::string SeedTag(uint64_t seed) {
  return "[seed " + std::to_string(seed) + "] ";
}

std::string RowsString(const Relation& rel) {
  std::string out;
  for (const auto& [tuple, count] : rel.SortedRows()) {
    out += tuple.ToString();
    if (count != 1) out += "x" + std::to_string(count);
    out += " ";
  }
  return out;
}

Status AddParsedRelation(SourceDb* db, const std::string& name,
                         const std::string& decl) {
  SQ_ASSIGN_OR_RETURN(auto parsed, ParseSchemaDecl(decl));
  return db->AddRelation(name, parsed.schema);
}

/// Per-source->mediator link delays, drawn once per real source so every
/// topology wires the same link characteristics for the same seed.
struct SimLink {
  Time comm_delay = 0;
  Time q_proc_delay = 0;
  Time announce_period = 0;
};

/// One pre-drawn workload event. All randomness is consumed at scenario
/// build time; deploying the scenario only schedules these.
struct SimOp {
  enum Kind { kInsert, kDelete, kQuery } kind = kInsert;
  Time when = 0;
  size_t db = 0;          ///< commits: index into Scenario::dbs
  std::string relation;   ///< commits: target relation
  Tuple tuple;            ///< commits: inserted / deleted row
  ViewQuery query;        ///< queries: submitted to the (root) mediator
};

/// Everything one seed determines BEFORE the deployment shape is chosen:
/// sources with initial contents, the VDP + annotation, the workload, the
/// per-source fault plans (with restart windows merged in), the shared
/// mediator crash windows, and the mediator policy options. RunFaultSim
/// deploys a Scenario as one mediator or as a shard tree; because every
/// draw happens here, the scenario is byte-identical across topologies.
struct Scenario {
  bool has_db3 = false;
  std::unique_ptr<SourceDb> db1, db2, db3;
  std::vector<SourceDb*> dbs;
  Vdp vdp;
  Annotation ann;
  Time t_end = 0;
  std::vector<CrashWindow> med_windows;
  std::vector<FaultPlan> plans;  // parallel to dbs
  std::vector<SimLink> links;    // parallel to dbs
  MediatorOptions options;       // policy only; durability wired per runner
  std::vector<SimOp> ops;
  /// Storm queries (overload injector), kept apart from the workload so the
  /// baseline ops stay byte-identical with the storm off.
  std::vector<SimOp> storm_ops;
  std::string fault_plan_dump;
};

/// Draws the whole scenario from the seed, preserving the historical rng
/// draw order exactly (the restart-pin and replay-identity sweeps depend on
/// the schedule being a pure function of the seed and the non-topology
/// options).
Result<Scenario> BuildScenario(uint64_t seed, const FaultSimOptions& opts) {
  Rng rng(seed * 0x2545F4914F6CDD1DULL + 12345);
  Scenario sc;

  // ---- sources (DB3 present in half the scenarios) ----
  sc.db1 = std::make_unique<SourceDb>("DB1");
  sc.db2 = std::make_unique<SourceDb>("DB2");
  SQ_RETURN_IF_ERROR(
      AddParsedRelation(sc.db1.get(), "R", "R(r1, r2, r3, r4) key(r1)"));
  SQ_RETURN_IF_ERROR(
      AddParsedRelation(sc.db2.get(), "S", "S(s1, s2, s3) key(s1)"));
  sc.has_db3 = rng.Bernoulli(0.5);
  if (sc.has_db3) {
    sc.db3 = std::make_unique<SourceDb>("DB3");
    SQ_RETURN_IF_ERROR(
        AddParsedRelation(sc.db3.get(), "U", "U(u1, u2) key(u1)"));
  }

  // ---- random Figure-1-shaped VDP (optional filters + third branch) ----
  bool r_filter = rng.Bernoulli(0.7);
  bool s_filter = rng.Bernoulli(0.7);
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(r1, r2, r3, r4) key(r1)");
  b.Leaf("S", "DB2", "S", "S(s1, s2, s3) key(s1)");
  b.LeafParent("R'", "R", {"r1", "r2", "r3"}, r_filter ? "r4 = 100" : "");
  b.LeafParent("S'", "S", {"s1", "s2"}, s_filter ? "s3 < 50" : "");
  b.Spj("T", {{"R'", {"r1", "r2", "r3"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r1", "r3", "s1", "s2"}, "", /*exported=*/true);
  if (sc.has_db3) {
    b.Leaf("U", "DB3", "U", "U(u1, u2) key(u1)");
    b.LeafParent("U'", "U", {"u1", "u2"});
    b.LeafParent("S2", "S", {"s1", "s3"});
    b.Spj("W", {{"S2", {"s1", "s3"}, ""}, {"U'", {"u1", "u2"}, ""}},
          {"s1 = u1"}, {"s1", "s3", "u2"}, "", /*exported=*/true);
  }
  SQ_ASSIGN_OR_RETURN(sc.vdp, b.Build());

  // ---- random annotation, drawn from the safe patterns of §2's examples:
  // leaf-parents all-materialized or all-virtual, exports all-materialized,
  // all-virtual via their inputs, or hybrid with the join keys materialized
  // (Example 2.3) ----
  int kind = static_cast<int>(rng.Uniform(4));
  if (kind == 1) {
    SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "R'", AttrMode::kVirtual));
  } else if (kind == 2) {
    SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "S'", AttrMode::kVirtual));
  } else if (kind == 3) {
    SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "R'", AttrMode::kVirtual));
    SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "S'", AttrMode::kVirtual));
    SQ_RETURN_IF_ERROR(
        sc.ann.SetFromSpec(sc.vdp, "T", "r1 m, r3 v, s1 m, s2 v"));
  }
  if (sc.has_db3) {
    int wkind = static_cast<int>(rng.Uniform(3));
    if (wkind == 1) {
      SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "U'", AttrMode::kVirtual));
    } else if (wkind == 2) {
      SQ_RETURN_IF_ERROR(sc.ann.SetAll(sc.vdp, "S2", AttrMode::kVirtual));
      SQ_RETURN_IF_ERROR(
          sc.ann.SetFromSpec(sc.vdp, "W", "s1 m, s3 v, u2 m"));
    }
  }

  // ---- workload horizon (drawn up front so fault plans can bound their
  // crash windows inside it) ----
  std::vector<Time> event_times;
  Time t = 1.0;
  for (int i = 0; i < opts.steps; ++i) {
    t += (3.0 + rng.UniformDouble() * 2.5) * opts.event_gap_scale;
    event_times.push_back(t);
  }
  sc.t_end = t;
  const Time t_end = sc.t_end;

  // ---- mediator crash windows, drawn once and shared across every source
  // injector (the ARQ model needs all senders to agree on the downtime).
  // Each window sits in its own slice of the horizon, so windows never
  // overlap, and all close well before t_end so the drain phase quiesces ----
  if (opts.mediator_crashes > 0) {
    Time span = (t_end - 8.0) / opts.mediator_crashes;
    for (int w = 0; w < opts.mediator_crashes && span > 1.0; ++w) {
      Time lo = 5.0 + w * span;
      Time start = lo + rng.UniformDouble() * span * 0.5;
      Time end = start + 0.5 + rng.UniformDouble() * span * 0.4;
      if (end < t_end - 2.0) sc.med_windows.push_back({start, end});
    }
  }

  // ---- per-source fault plans; every randomized fault stops at t_end and
  // all crash windows close before it, so the drain phase quiesces ----
  auto make_plan = [&rng, t_end, &sc, &opts](const std::string& name) {
    FaultPlan p;
    // Assigned, not drawn: enabling payload corruption must not perturb the
    // rng-driven schedule decisions below.
    p.snapshot_corrupt_prob = opts.snapshot_corrupt_prob;
    p.delay_jitter_max = rng.UniformDouble() * 0.4;
    p.drop_prob = rng.UniformDouble() * 0.25;
    p.dup_prob = rng.UniformDouble() * 0.15;
    p.retransmit_timeout = 0.2 + rng.UniformDouble() * 0.5;
    p.slow_poll_prob = rng.UniformDouble() * 0.3;
    p.slow_poll_delay = rng.UniformDouble() * 1.5;
    p.crash_probe_period = 0.5;
    p.active_until = t_end;
    int windows = static_cast<int>(rng.Uniform(3));
    Time cursor = 5.0;
    for (int w = 0; w < windows; ++w) {
      Time start = cursor + rng.UniformDouble() * t_end * 0.6;
      Time end = std::min(start + 2.0 + rng.UniformDouble() * 6.0,
                          t_end - 1.0);
      if (end > start) p.crashes[name].push_back({start, end});
      cursor = end + 2.0;
    }
    p.mediator_crashes = sc.med_windows;
    return p;
  };
  sc.dbs = {sc.db1.get(), sc.db2.get()};
  if (sc.has_db3) sc.dbs.push_back(sc.db3.get());
  for (size_t i = 0; i < sc.dbs.size(); ++i) {
    sc.plans.push_back(make_plan(sc.dbs[i]->name()));
  }
  // Deterministic rendering of the schedule EXCLUDING restart windows; the
  // dedicated-rng pin test asserts it is byte-identical whether or not
  // source restarts are enabled for this seed.
  sc.fault_plan_dump = "t_end=" + std::to_string(t_end) + "\n";
  for (size_t i = 0; i < sc.dbs.size(); ++i) {
    const FaultPlan& p = sc.plans[i];
    sc.fault_plan_dump +=
        sc.dbs[i]->name() + ": jitter=" + std::to_string(p.delay_jitter_max) +
        " drop=" + std::to_string(p.drop_prob) +
        " dup=" + std::to_string(p.dup_prob) +
        " arq=" + std::to_string(p.retransmit_timeout) +
        " slow=" + std::to_string(p.slow_poll_prob) + "/" +
        std::to_string(p.slow_poll_delay) + " crashes=";
    for (const auto& [name, windows] : p.crashes) {
      for (const CrashWindow& w : windows) {
        sc.fault_plan_dump += "[" + std::to_string(w.start) + "," +
                              std::to_string(w.end) + "]";
      }
    }
    sc.fault_plan_dump += "\n";
  }
  sc.fault_plan_dump += "mediator:";
  for (const CrashWindow& w : sc.med_windows) {
    sc.fault_plan_dump +=
        " [" + std::to_string(w.start) + "," + std::to_string(w.end) + "]";
  }
  sc.fault_plan_dump += "\n";
  // Source restart windows draw from a DEDICATED rng stream, after every
  // other schedule decision: the draws above are identical with restarts on
  // or off, so a restart run's baseline is simply the same seed without
  // restarts.
  if (opts.source_restarts > 0) {
    Rng restart_rng(seed * 0xA24BAED4963EE407ULL + 99991);
    for (size_t i = 0; i < sc.dbs.size(); ++i) {
      int windows =
          static_cast<int>(restart_rng.Uniform(opts.source_restarts + 1));
      Time cursor = 6.0;
      for (int w = 0; w < windows; ++w) {
        Time start = cursor + restart_rng.UniformDouble() * t_end * 0.5;
        Time end = start + 0.5 + restart_rng.UniformDouble() * 5.0;
        if (end >= t_end - 2.0) break;
        sc.plans[i].restarts[sc.dbs[i]->name()].push_back({start, end});
        cursor = end + 3.0;
      }
    }
  }

  // ---- mediator configuration; the final re-poll deadline
  // (poll_timeout * backoff^retries >= 12) comfortably exceeds the
  // worst-case healthy round trip, so post-fault rounds always complete ----
  sc.options.update_period =
      rng.Bernoulli(0.5) ? 0.0 : rng.UniformDouble() * 3;
  sc.options.u_proc_delay = rng.UniformDouble() * 0.2;
  sc.options.q_proc_delay = rng.UniformDouble() * 0.2;
  sc.options.poll_timeout = 1.5 + rng.UniformDouble() * 2.0;
  sc.options.poll_backoff = 2.0;
  sc.options.poll_max_retries = 3;
  sc.options.txn_retry_delay = 0.5 + rng.UniformDouble();
  sc.options.use_indexes = opts.use_indexes;
  sc.options.coalesce_window = opts.coalesce_window;
  sc.options.degraded_reads = opts.degraded_reads;
  sc.options.max_queue_depth = opts.max_queue_depth;
  sc.options.iup_threads = opts.iup_threads;
  sc.options.iup_perturb_seed = opts.iup_perturb_seed;
  sc.options.mvcc_reads = opts.mvcc_reads;
  sc.options.columnar = opts.columnar;
  // Assigned, not drawn: the overload-protection knobs must not perturb the
  // rng-driven schedule above, so an overload run's baseline is the same
  // seed with the knobs off. The jitter seed is the run seed, keeping the
  // backoff schedule a pure function of (seed, options).
  sc.options.poll_backoff_cap = opts.poll_backoff_cap;
  sc.options.poll_jitter = opts.poll_jitter;
  sc.options.poll_jitter_seed = seed;
  if (opts.admit_max_active > 0) {
    // Cap the externally driven classes only; kInternal stays unlimited so
    // the harness's own final correctness queries are never refused.
    for (QueryClass cls : {QueryClass::kInteractive, QueryClass::kBatch}) {
      sc.options.admission.max_active[static_cast<size_t>(cls)] =
          opts.admit_max_active;
      sc.options.admission.max_queued[static_cast<size_t>(cls)] =
          opts.admit_max_queued;
    }
  }
  for (size_t i = 0; i < sc.dbs.size(); ++i) {
    SimLink l;
    l.comm_delay = 0.2 + rng.UniformDouble() * 0.5;
    l.q_proc_delay = 0.1 + rng.UniformDouble() * 0.3;
    l.announce_period = rng.Bernoulli(0.5) ? 0.0 : rng.UniformDouble() * 2;
    sc.links.push_back(l);
  }

  // ---- initial contents (joinable value schemes: r2/s1/u1 in 100*[0,3]) ----
  std::map<int64_t, Tuple> r_rows = {{1, Tuple({1, 100, 11, 100})}};
  std::map<int64_t, Tuple> s_rows = {{100, Tuple({100, 5, 10})}};
  std::map<int64_t, Tuple> u_rows;
  SQ_RETURN_IF_ERROR(sc.db1->InsertTuple(0, "R", r_rows[1]));
  SQ_RETURN_IF_ERROR(sc.db2->InsertTuple(0, "S", s_rows[100]));
  if (sc.has_db3) {
    u_rows[100] = Tuple({100, 7});
    SQ_RETURN_IF_ERROR(sc.db3->InsertTuple(0, "U", u_rows[100]));
  }

  // ---- the workload (all randomness drawn now, none at deploy time, so
  // the whole event sequence is a function of the seed) ----
  auto commit = [&sc](SimOp::Kind kind, Time when, size_t db,
                      const std::string& rel, const Tuple& tup) {
    SimOp op;
    op.kind = kind;
    op.when = when;
    op.db = db;
    op.relation = rel;
    op.tuple = tup;
    sc.ops.push_back(std::move(op));
  };
  for (Time when : event_times) {
    double dice = rng.UniformDouble();
    if (dice < 0.30) {
      // Commit on R.
      if (!r_rows.empty() && rng.Bernoulli(0.4)) {
        auto it = r_rows.begin();
        std::advance(it, rng.Uniform(r_rows.size()));
        Tuple victim = it->second;
        r_rows.erase(it);
        commit(SimOp::kDelete, when, 0, "R", victim);
      } else {
        int64_t key = rng.UniformInt(0, 40);
        if (r_rows.count(key)) continue;
        Tuple tup({key, rng.UniformInt(0, 4) * 100, rng.UniformInt(0, 99),
                   rng.Bernoulli(0.7) ? int64_t{100} : int64_t{7}});
        r_rows[key] = tup;
        commit(SimOp::kInsert, when, 0, "R", tup);
      }
    } else if (dice < 0.55) {
      // Commit on S.
      if (!s_rows.empty() && rng.Bernoulli(0.4)) {
        auto it = s_rows.begin();
        std::advance(it, rng.Uniform(s_rows.size()));
        Tuple victim = it->second;
        s_rows.erase(it);
        commit(SimOp::kDelete, when, 1, "S", victim);
      } else {
        int64_t key = rng.UniformInt(0, 4) * 100;
        if (s_rows.count(key)) continue;
        Tuple tup({key, rng.UniformInt(0, 9), rng.UniformInt(0, 99)});
        s_rows[key] = tup;
        commit(SimOp::kInsert, when, 1, "S", tup);
      }
    } else if (sc.has_db3 && dice < 0.70) {
      // Commit on U.
      if (!u_rows.empty() && rng.Bernoulli(0.4)) {
        auto it = u_rows.begin();
        std::advance(it, rng.Uniform(u_rows.size()));
        Tuple victim = it->second;
        u_rows.erase(it);
        commit(SimOp::kDelete, when, 2, "U", victim);
      } else {
        int64_t key = rng.UniformInt(0, 4) * 100;
        if (u_rows.count(key)) continue;
        Tuple tup({key, rng.UniformInt(0, 99)});
        u_rows[key] = tup;
        commit(SimOp::kInsert, when, 2, "U", tup);
      }
    } else {
      SimOp op;
      op.kind = SimOp::kQuery;
      op.when = when;
      if (sc.has_db3 && rng.Bernoulli(0.4)) {
        op.query.relation = "W";
        if (rng.Bernoulli(0.5)) op.query.attrs = {"s1", "u2"};
      } else {
        op.query.relation = "T";
        if (rng.Bernoulli(0.5)) {
          op.query.attrs = {"r1", "s1"};
        } else {
          op.query.attrs = {"r1", "r3", "s2"};
          if (rng.Bernoulli(0.5)) {
            SQ_ASSIGN_OR_RETURN(op.query.cond, ParsePredicate("r3 < 50"));
          }
        }
      }
      sc.ops.push_back(std::move(op));
    }
  }

  // ---- storm queries (overload injector) draw from a DEDICATED rng
  // stream, after every other schedule decision: the workload above is
  // byte-identical with the storm on or off, so a storm run's export oracle
  // is simply the same seed without the storm ----
  if (opts.query_storm > 0) {
    Rng storm_rng(seed * 0xD6E8FEB86659FD93ULL + 77777);
    for (int i = 0; i < opts.query_storm; ++i) {
      SimOp op;
      op.kind = SimOp::kQuery;
      op.when = 2.0 + storm_rng.UniformDouble() * (sc.t_end - 2.0);
      if (sc.has_db3 && storm_rng.Bernoulli(0.4)) {
        op.query.relation = "W";
        if (storm_rng.Bernoulli(0.5)) op.query.attrs = {"s1", "u2"};
      } else {
        op.query.relation = "T";
        if (storm_rng.Bernoulli(0.5)) op.query.attrs = {"r1", "s1"};
      }
      op.query.qclass = storm_rng.Bernoulli(0.5) ? QueryClass::kInteractive
                                                 : QueryClass::kBatch;
      if (opts.query_deadline > 0) {
        op.query.deadline = op.when + opts.query_deadline;
      }
      sc.storm_ops.push_back(std::move(op));
    }
  }
  return sc;
}

/// The lying-disk plan shared by every deployment shape.
StorageFaultPlan MakeStoragePlan(const FaultSimOptions& opts) {
  using SF = FaultSimOptions::StorageFault;
  StorageFaultPlan sp;
  sp.max_faults = opts.storage_max_faults;
  switch (opts.storage_fault) {
    case SF::kTornAppend:
      sp.torn_append_prob = 0.05;
      break;
    case SF::kBitFlip:
      sp.bitflip_prob = 0.05;
      break;
    case SF::kFsyncDrop:
      sp.fsync_drop_prob = 0.05;
      break;
    case SF::kEnospc:
      sp.enospc_prob = 0.05;
      sp.enospc_len = 3;
      break;
    case SF::kCheckpointCorrupt:
      // Checkpoint frames are rare; a higher rate keeps the sweep from
      // injecting nothing on most seeds.
      sp.bitflip_prob = 0.35;
      sp.target_checkpoints = true;
      break;
    case SF::kNone:
      break;
  }
  return sp;
}

/// Schedules every pre-drawn workload op: commits against the autonomous
/// sources, queries against \p query_target (the root mediator).
void ScheduleOps(Scenario& sc, Scheduler& scheduler, Mediator* query_target,
                 FaultSimResult* result, std::string* bad_status) {
  for (const SimOp& op : sc.ops) {
    if (op.kind == SimOp::kQuery) {
      Mediator* mediator = query_target;
      ViewQuery q = op.query;
      scheduler.At(op.when, [mediator, q, result, bad_status]() {
        mediator->SubmitQuery(
            q, [result, bad_status](Result<ViewAnswer> ans) {
              if (ans.ok()) {
                if (ans.value().degraded) {
                  ++result->queries_degraded;  // stale-but-annotated answer
                } else {
                  ++result->queries_ok;
                }
              } else if (ans.status().code() == StatusCode::kUnavailable ||
                         ans.status().code() ==
                             StatusCode::kDeadlineExceeded ||
                         ans.status().code() == StatusCode::kOverloaded) {
                // Legal fail-over under faults, or a typed overload outcome
                // when the run configures deadlines / admission limits.
                ++result->queries_failed;
              } else if (bad_status->empty()) {
                *bad_status = ans.status().ToString();
              }
            });
      });
      continue;
    }
    SourceDb* db = sc.dbs[op.db];
    std::string rel = op.relation;
    Tuple tup = op.tuple;
    if (op.kind == SimOp::kInsert) {
      scheduler.At(op.when, [db, rel, tup, &scheduler]() {
        (void)db->InsertTuple(scheduler.Now(), rel, tup);
      });
    } else {
      scheduler.At(op.when, [db, rel, tup, &scheduler]() {
        (void)db->DeleteTuple(scheduler.Now(), rel, tup);
      });
    }
  }
}

/// Schedules the overload-injector storm against \p target and tallies every
/// outcome. Unlike workload queries, a storm query's deadline or admission
/// rejection is an EXPECTED result; the sweep asserts the dichotomy (every
/// storm query resolves by its deadline or with a typed error) via
/// storm_late / storm_untyped, and an untyped failure surfaces through
/// \p bad_status like any workload bug.
void ScheduleStormOps(Scenario& sc, Scheduler& scheduler, Mediator* target,
                      FaultSimResult* result, std::string* bad_status) {
  result->storm_queries = sc.storm_ops.size();
  for (const SimOp& op : sc.storm_ops) {
    ViewQuery q = op.query;
    const Time when = op.when;
    scheduler.At(when, [target, q, when, result, bad_status, &scheduler]() {
      const Time deadline = q.deadline;
      target->SubmitQuery(q, [when, deadline, result, bad_status,
                              &scheduler](Result<ViewAnswer> ans) {
        const Time now = scheduler.Now();
        result->storm_latencies.push_back(now - when);
        if (deadline > 0 && now > deadline + 1e-9) ++result->storm_late;
        if (ans.ok()) {
          if (ans.value().degraded) {
            ++result->storm_degraded;
          } else {
            ++result->storm_ok;
          }
          return;
        }
        switch (ans.status().code()) {
          case StatusCode::kDeadlineExceeded:
            ++result->storm_deadline_exceeded;
            break;
          case StatusCode::kOverloaded:
            ++result->storm_rejected_overload;
            break;
          case StatusCode::kUnavailable:
            ++result->storm_unavailable;
            break;
          default:
            ++result->storm_untyped;
            if (bad_status->empty()) {
              *bad_status = "storm: " + ans.status().ToString();
            }
            break;
        }
      });
    });
  }
}

// ---------------------------------------------------------------------------
// Single-mediator deployment (the classic RunFaultSim body).
// ---------------------------------------------------------------------------
Result<FaultSimResult> RunSingle(uint64_t seed, const FaultSimOptions& opts,
                                 Scenario& sc, FaultSimResult result) {
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  for (size_t i = 0; i < sc.dbs.size(); ++i) {
    injectors.push_back(
        std::make_unique<FaultInjector>(sc.plans[i], seed + 1000 + i));
  }

  Scheduler scheduler;
  MediatorOptions options = sc.options;
  MemLogDevice log_dev;
  std::unique_ptr<FaultyLogDevice> faulty_dev;
  if (opts.durability) {
    options.durability.device = &log_dev;
    options.durability.wal = opts.wal;
    options.durability.checkpoint_every = opts.checkpoint_every;
    if (opts.storage_fault != FaultSimOptions::StorageFault::kNone) {
      // Wrap the in-memory device in a seeded lying disk. The decorator
      // delegates LSN numbering (and the crash-point append hook) to the
      // inner device, so the sweeps compose.
      faulty_dev = std::make_unique<FaultyLogDevice>(
          &log_dev, MakeStoragePlan(opts), seed);
      options.durability.device = faulty_dev.get();
      // A lying disk can lose an acknowledged log tail without a trace;
      // paranoid resync-on-recovery is the documented deployment answer.
      options.durability.resync_on_recovery = true;
    }
  }
  std::vector<SourceSetup> setups;
  for (size_t i = 0; i < sc.dbs.size(); ++i) {
    SourceSetup s;
    s.db = sc.dbs[i];
    s.comm_delay = sc.links[i].comm_delay;
    s.q_proc_delay = sc.links[i].q_proc_delay;
    s.announce_period = sc.links[i].announce_period;
    s.faults = injectors[i].get();
    setups.push_back(s);
  }

  SQ_ASSIGN_OR_RETURN(
      std::unique_ptr<Mediator> med,
      Mediator::Create(sc.vdp, sc.ann, setups, &scheduler, options));
  Mediator* mediator = med.get();

  // Crash-point sweep: one-shot atomic crash+recover scheduled as a fresh
  // event right after the chosen WAL record lands (the hook fires inside
  // the appending event, so the kill must not run mid-event). Recovery
  // itself appends a checkpoint; the one-shot flag keeps that from
  // re-triggering. Armed before Start() because LSN 0 — the initial
  // checkpoint — is appended during Start().
  std::string recover_error;
  Status corrupted_status = Status::OK();
  // A kCorrupted recovery is a DISTINCT outcome, not an error: the log was
  // damaged beyond principled repair and the mediator refused it (the
  // alternative is silently diverging state). The caller judges whether the
  // fault plan made that legal.
  std::vector<Time> recovery_times;  // order-reset boundaries for the checker
  auto on_recover = [&recover_error, &corrupted_status, &recovery_times,
                     &scheduler](const Status& st) {
    recovery_times.push_back(scheduler.Now());
    if (st.ok()) return;
    if (st.code() == StatusCode::kCorrupted) {
      if (corrupted_status.ok()) corrupted_status = st;
    } else if (recover_error.empty()) {
      recover_error = st.ToString();
    }
  };
  bool crash_armed = opts.crash_at_wal_record >= 0;
  if (crash_armed) {
    uint64_t target = static_cast<uint64_t>(opts.crash_at_wal_record);
    log_dev.SetAppendHook(
        [&crash_armed, target, &scheduler, mediator,
         &on_recover](uint64_t lsn) {
          if (!crash_armed || lsn != target) return;
          crash_armed = false;
          scheduler.After(0, [mediator, &on_recover]() {
            on_recover(mediator->CrashAndRecover());
          });
        });
  }
  SQ_RETURN_IF_ERROR(med->Start());

  // ---- mediator crash/restart schedule ----
  for (const CrashWindow& w : sc.med_windows) {
    scheduler.At(w.start, [mediator]() { mediator->Crash(); });
    scheduler.At(w.end, [mediator, &on_recover]() {
      on_recover(mediator->Recover());
    });
  }
  // ---- storage-fault sweeps: one crash+recover after the workload, early
  // enough in the drain for the paranoid resyncs to complete. This is the
  // recovery that actually READS the lying disk's damage ----
  if (opts.final_crash_recover) {
    scheduler.At(sc.t_end + opts.drain * 0.5, [mediator, &on_recover]() {
      on_recover(mediator->CrashAndRecover());
    });
  }

  // ---- schedule the pre-drawn workload and the overload storm ----
  std::string bad_status;
  ScheduleOps(sc, scheduler, mediator, &result, &bad_status);
  ScheduleStormOps(sc, scheduler, mediator, &result, &bad_status);

  // ---- run to quiescence: all faults are over by t_end, so within the
  // drain every retransmit lands, every aborted transaction retries
  // successfully, and the queue empties ----
  scheduler.RunUntil(sc.t_end + opts.drain);
  auto fill_storage = [&result, &faulty_dev, &injectors](
                          const MediatorStats& s) {
    if (faulty_dev != nullptr) {
      result.storage_faults_injected =
          static_cast<uint64_t>(faulty_dev->faults_injected());
    }
    result.wal_append_failures = s.wal_append_failures;
    result.updates_dropped_wal = s.updates_dropped_wal;
    result.recovery_tail_repairs = s.recovery_tail_repairs;
    result.recovery_checkpoint_fallbacks = s.recovery_checkpoint_fallbacks;
    result.resyncs_after_recovery = s.resyncs_after_recovery;
    result.update_checksum_failures = s.update_checksum_failures;
    result.snapshot_checksum_failures = s.snapshot_checksum_failures;
    for (const auto& inj : injectors) {
      result.payloads_corrupted += inj->counters().payloads_corrupted;
    }
  };
  auto storage_line = [&result]() {
    return "storage: injected=" +
           std::to_string(result.storage_faults_injected) +
           " wal_failures=" + std::to_string(result.wal_append_failures) +
           " dropped_wal=" + std::to_string(result.updates_dropped_wal) +
           " tail_repairs=" + std::to_string(result.recovery_tail_repairs) +
           " ckpt_fallbacks=" +
           std::to_string(result.recovery_checkpoint_fallbacks) +
           " resync_rec=" + std::to_string(result.resyncs_after_recovery) +
           " upd_crc=" + std::to_string(result.update_checksum_failures) +
           " snap_crc=" + std::to_string(result.snapshot_checksum_failures) +
           " payloads=" + std::to_string(result.payloads_corrupted) + "\n";
  };
  if (!corrupted_status.ok()) {
    // Unrecoverable log: surface the typed refusal with its diagnostics.
    // The trace up to the crash plus the refusal line is still rendered
    // deterministically — replay identity holds for corrupted runs too.
    result.corrupted = true;
    result.corrupted_diag = corrupted_status.ToString();
    result.stats = mediator->stats();
    result.stats_dump = result.stats.ToString();
    fill_storage(result.stats);
    result.trace_dump = mediator->trace().ToString(/*include_data=*/true) +
                        "corrupted: " + result.corrupted_diag + "\n" +
                        storage_line();
    return result;
  }
  if (!recover_error.empty()) {
    return Status::Internal(SeedTag(seed) +
                            "mediator recovery failed: " + recover_error);
  }
  if (mediator->crashed()) {
    return Status::Internal(SeedTag(seed) + "mediator still crashed at drain");
  }
  if (mediator->busy() || mediator->QueueSize() != 0) {
    return Status::Internal(
        SeedTag(seed) + "no quiescence after drain: busy=" +
        std::to_string(mediator->busy()) +
        " queue=" + std::to_string(mediator->QueueSize()));
  }
  if (!bad_status.empty()) {
    return Status::Internal(SeedTag(seed) + "query failed with non-fault " +
                            "status: " + bad_status);
  }
  if (result.storm_latencies.size() != result.storm_queries) {
    return Status::Internal(
        SeedTag(seed) + "unresolved storm queries: resolved=" +
        std::to_string(result.storm_latencies.size()) + " of " +
        std::to_string(result.storm_queries));
  }

  // ---- every export must equal a from-scratch recomputation over the
  // final source states ----
  ConsistencyChecker checker(&sc.vdp, &mediator->annotation(),
                             {sc.dbs.begin(), sc.dbs.end()});
  const Time t_fq = sc.t_end + opts.drain + 10.0;
  std::map<std::string, Result<ViewAnswer>> final_answers;
  for (const std::string& exp : sc.vdp.ExportNames()) {
    ViewQuery q;
    q.relation = exp;
    // Internal class: the harness's own correctness probes must never be
    // refused by an admission gate configured for the external classes.
    q.qclass = QueryClass::kInternal;
    final_answers.emplace(exp, Status::Internal("no answer"));
    auto* slot = &final_answers.at(exp);
    scheduler.At(t_fq, [mediator, q, slot]() {
      mediator->SubmitQuery(
          q, [slot](Result<ViewAnswer> ans) { *slot = std::move(ans); });
    });
  }
  scheduler.RunUntil(t_fq + 100.0);
  TimeVector final_at(sc.dbs.size(), sc.t_end + 1.0);
  for (const std::string& exp : sc.vdp.ExportNames()) {
    const Result<ViewAnswer>& ans = final_answers.at(exp);
    if (!ans.ok()) {
      return Status::Internal(SeedTag(seed) + "final query on " + exp +
                              " failed: " + ans.status().ToString());
    }
    if (ans.value().degraded) {
      return Status::Internal(SeedTag(seed) + "final query on " + exp +
                              " was degraded (a source never recovered)");
    }
    SQ_ASSIGN_OR_RETURN(Relation expected, checker.EvalNodeAt(exp, final_at));
    std::string got = RowsString(ans.value().data);
    std::string want = RowsString(expected.ToSet());
    if (got != want) {
      return Status::Internal(SeedTag(seed) + "final state of " + exp +
                              " diverged from recomputation:\n  got  " + got +
                              "\n  want " + want);
    }
    result.final_exports += exp + ": " + got + "\n";
    ++result.exports_checked;
  }

  // ---- no permanent outage: after drain + final queries, every source
  // must be back to healthy and un-quarantined (resync-sweep invariant) ----
  if (opts.require_all_healthy) {
    std::vector<std::string> quarantined = mediator->QuarantinedSources();
    if (!quarantined.empty()) {
      return Status::Internal(SeedTag(seed) + "source(s) still quarantined " +
                              "after drain: " + Join(quarantined, ", "));
    }
    std::vector<std::string> unhealthy = mediator->resync().UnhealthySources();
    if (!unhealthy.empty()) {
      return Status::Internal(SeedTag(seed) + "source(s) still resyncing " +
                              "after drain: " + Join(unhealthy, ", "));
    }
  }

  // ---- the whole trace must pass the independent consistency checker ----
  // With a lying disk, a recovery may legitimately resume from an older
  // reflect vector (acked-but-lost tail, repaired by resync); the checker
  // resets its order watermark at those boundaries only. Clean-storage runs
  // keep the strict cross-crash order check.
  const bool lossy_storage =
      opts.storage_fault != FaultSimOptions::StorageFault::kNone;
  SQ_ASSIGN_OR_RETURN(
      ConsistencyReport report,
      checker.Check(mediator->trace(),
                    lossy_storage ? recovery_times : std::vector<Time>{}));
  if (!report.consistent()) {
    return Status::Internal(
        SeedTag(seed) + "trace inconsistent: " +
        (report.violations.empty() ? "no details" : report.violations[0]));
  }

  // ---- deterministic rendering for the replay-identity check ----
  result.stats = mediator->stats();
  for (const auto& inj : injectors) {
    result.transmissions_lost += inj->counters().transmissions_lost;
    result.duplicates += inj->counters().duplicates;
    result.blackholed += inj->counters().blackholed;
    result.slow_polls += inj->counters().slow_polls;
    result.mediator_retransmits += inj->counters().mediator_retransmits;
  }
  result.mediator_crashes = result.stats.mediator_crashes;
  result.recoveries = result.stats.recoveries;
  result.recovery_txns_replayed = result.stats.recovery_txns_replayed;
  result.recovery_txns_rolled_back = result.stats.recovery_txns_rolled_back;
  result.recovery_msgs_requeued = result.stats.recovery_msgs_requeued;
  result.wal_records = mediator->durability().records_logged();
  result.checkpoints = mediator->durability().checkpoints_written();
  result.coalesced_msgs = mediator->CoalescedMessages();
  for (SourceDb* db : sc.dbs) result.source_restarts += db->epoch() - 1;
  const MediatorStats& ms = result.stats;
  result.epoch_bumps = ms.epoch_bumps;
  result.resyncs_started = ms.resyncs_started;
  result.resyncs_completed = ms.resyncs_completed;
  result.snapshots_requested = ms.snapshots_requested;
  result.updates_dropped_resync = ms.updates_dropped_resync;
  result.updates_shed = ms.updates_shed;
  result.requarantines = ms.requarantines;
  result.trace_dump =
      mediator->trace().ToString(/*include_data=*/true) +
      "stats: updates=" + std::to_string(ms.update_txns) +
      " queries=" + std::to_string(ms.query_txns) +
      " polls=" + std::to_string(ms.polls) +
      " dup_updates=" + std::to_string(ms.duplicate_updates_dropped) +
      " stale_answers=" + std::to_string(ms.stale_poll_answers) +
      " timeouts=" + std::to_string(ms.poll_timeouts) +
      " retries=" + std::to_string(ms.poll_retries) +
      " aborts=" + std::to_string(ms.update_txn_aborts) +
      " failed_queries=" + std::to_string(ms.failed_queries) +
      " quarantines=" + std::to_string(ms.quarantines) +
      "\nfaults: lost=" + std::to_string(result.transmissions_lost) +
      " dups=" + std::to_string(result.duplicates) +
      " blackholed=" + std::to_string(result.blackholed) +
      " slow=" + std::to_string(result.slow_polls) +
      "\ndurability: crashes=" + std::to_string(result.mediator_crashes) +
      " recoveries=" + std::to_string(result.recoveries) +
      " replayed=" + std::to_string(result.recovery_txns_replayed) +
      " rolled_back=" + std::to_string(result.recovery_txns_rolled_back) +
      " requeued=" + std::to_string(result.recovery_msgs_requeued) +
      " wal_records=" + std::to_string(result.wal_records) +
      " checkpoints=" + std::to_string(result.checkpoints) +
      " med_retransmits=" + std::to_string(result.mediator_retransmits) +
      " coalesced=" + std::to_string(result.coalesced_msgs) +
      "\nresync: restarts=" + std::to_string(result.source_restarts) +
      " epoch_bumps=" + std::to_string(ms.epoch_bumps) +
      " seq_gap=" + std::to_string(ms.seq_gap_resyncs) +
      " started=" + std::to_string(ms.resyncs_started) +
      " completed=" + std::to_string(ms.resyncs_completed) +
      " snapshots=" + std::to_string(ms.snapshots_requested) +
      " dropped=" + std::to_string(ms.updates_dropped_resync) +
      " stale_epoch=" + std::to_string(ms.stale_epoch_msgs) +
      " shed=" + std::to_string(ms.updates_shed) +
      " requarantines=" + std::to_string(ms.requarantines) +
      " degraded=" + std::to_string(ms.degraded_queries) +
      "\n";
  fill_storage(ms);
  result.trace_dump += storage_line();
  // Zero-valued in non-overload runs, so replay comparisons across engine
  // modes (columnar on/off) see the identical line on both sides.
  result.trace_dump +=
      "overload: deadline_exceeded=" +
      std::to_string(ms.deadline_exceeded_queries) +
      " rejected=" + std::to_string(ms.queries_rejected_overload) +
      " shed_soft=" + std::to_string(ms.queries_shed_soft_budget) +
      " mem_cancelled=" + std::to_string(ms.queries_cancelled_memory) +
      " poll_rejects=" + std::to_string(ms.poll_rejects) + "\n";
  result.stats_dump = ms.ToString();
  return result;
}

// ---------------------------------------------------------------------------
// Sharded deployment: the same scenario split across a mediator tree, each
// child exposed to its parent as one more SourceDb via an ExportAnnouncer.
// ---------------------------------------------------------------------------

/// The VDP partition for a topology. The child tiers own as much of the dag
/// as can announce deltas (their exports are forced fully materialized); the
/// root keeps the scenario's annotation on whatever it owns, so query-time
/// behavior matches the unsharded deployment.
std::vector<ShardSpec> SpecsFor(FaultSimOptions::Topology topo, bool has_db3) {
  using T = FaultSimOptions::Topology;
  if (topo == T::kTwoShard) {
    if (has_db3) {
      return {{"top", "", {"R'", "S'", "T"}}, {"shardA", "top", {"S2", "U'", "W"}}};
    }
    return {{"top", "", {"R'", "T"}}, {"shardA", "top", {"S'"}}};
  }
  // Three tiers: the top owns nothing and serves the exports it imports
  // through the middle tier (which passes the bottom shard's export up).
  if (has_db3) {
    return {{"top", "", {}},
            {"mid", "top", {"R'", "S'", "T"}},
            {"shardA", "mid", {"S2", "U'", "W"}}};
  }
  return {{"top", "", {}}, {"mid", "top", {"R'", "T"}}, {"shardA", "mid", {"S'"}}};
}

Result<FaultSimResult> RunSharded(uint64_t seed, const FaultSimOptions& opts,
                                  Scenario& sc, FaultSimResult result) {
  SQ_ASSIGN_OR_RETURN(ShardPlan plan,
                      ShardPlan::Build(sc.vdp, SpecsFor(opts.topology,
                                                        sc.has_db3)));
  // Every sharded-only draw (child crash windows, mirror-link faults and
  // delays) comes from this dedicated stream, keeping the scenario itself
  // byte-identical to the single-mediator deployment of the same seed.
  Rng srng(seed * 0x9E3779B97F4A7C15ULL + 424243);
  Scheduler scheduler;

  struct Tier {
    const Shard* shard = nullptr;
    std::vector<CrashWindow> windows;
    std::unique_ptr<MemLogDevice> dev;
    std::unique_ptr<FaultyLogDevice> faulty;
    std::vector<SourceDb*> sources;  // wired setup order (real + mirrors)
    std::unique_ptr<Mediator> med;
    std::unique_ptr<ExportAnnouncer> exporter;  // non-root only
    std::vector<Time> recovery_times;
  };
  std::vector<Tier> tiers(plan.shards().size());

  // Crash windows first (they feed the link fault plans below): the root
  // reuses the scenario's shared mediator windows; every child tier draws
  // its own schedule with the same slice structure.
  for (size_t ti = 0; ti < tiers.size(); ++ti) {
    tiers[ti].shard = &plan.shards()[ti];
    if (tiers[ti].shard->is_root()) {
      tiers[ti].windows = sc.med_windows;
      continue;
    }
    if (opts.mediator_crashes > 0 && opts.durability) {
      Time span = (sc.t_end - 8.0) / opts.mediator_crashes;
      for (int w = 0; w < opts.mediator_crashes && span > 1.0; ++w) {
        Time lo = 5.0 + w * span;
        Time start = lo + srng.UniformDouble() * span * 0.5;
        Time end = start + 0.5 + srng.UniformDouble() * span * 0.4;
        if (end < sc.t_end - 2.0) tiers[ti].windows.push_back({start, end});
      }
    }
  }

  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::map<std::string, bool> restarts_taken;  // real db -> consumer assigned
  uint64_t link_ordinal = 0;
  // Children first: a parent's setups need its child's mirror to exist.
  for (size_t ti = 0; ti < tiers.size(); ++ti) {
    Tier& tier = tiers[ti];
    SQ_ASSIGN_OR_RETURN(auto built, plan.BuildVdp(*tier.shard, sc.ann));
    std::vector<SourceSetup> setups;
    std::set<std::string> wired;
    for (const auto& name : built.first.TopoOrder()) {
      const VdpNode* n = built.first.Find(name);
      if (!n->is_leaf || !wired.insert(n->source_db).second) continue;
      SourceSetup s;
      FaultPlan p;
      size_t dbi = sc.dbs.size();
      for (size_t i = 0; i < sc.dbs.size(); ++i) {
        if (sc.dbs[i]->name() == n->source_db) dbi = i;
      }
      if (dbi < sc.dbs.size()) {
        // A real source: reuse the scenario's link characteristics and
        // fault plan, retargeting the mediator-downtime windows at THIS
        // tier. A db feeding several tiers must restart once per window,
        // so only its first consumer owns the restart schedule.
        s.db = sc.dbs[dbi];
        s.comm_delay = sc.links[dbi].comm_delay;
        s.q_proc_delay = sc.links[dbi].q_proc_delay;
        s.announce_period = sc.links[dbi].announce_period;
        p = sc.plans[dbi];
        p.mediator_crashes = tier.windows;
        bool& taken = restarts_taken[n->source_db];
        s.schedule_restarts = !taken;
        taken = true;
      } else {
        // A child shard's mirror: the inter-mediator link gets the same
        // fault model as a real source link, drawn from the sharded
        // stream. The child's own crash windows double as the mirror's
        // source-crash windows — a down shard is an unreachable source.
        size_t child_ti = tiers.size();
        for (size_t tj = 0; tj < ti; ++tj) {
          if (tiers[tj].shard->name == n->source_db) child_ti = tj;
        }
        if (child_ti == tiers.size()) {
          return Status::Internal("shard " + tier.shard->name +
                                  " wired before its child " + n->source_db);
        }
        s.db = tiers[child_ti].exporter->mirror();
        s.comm_delay = 0.2 + srng.UniformDouble() * 0.5;
        s.q_proc_delay = 0.1 + srng.UniformDouble() * 0.3;
        s.announce_period =
            srng.Bernoulli(0.5) ? 0.0 : srng.UniformDouble() * 2;
        p.snapshot_corrupt_prob = opts.snapshot_corrupt_prob;
        p.delay_jitter_max = srng.UniformDouble() * 0.4;
        p.drop_prob = srng.UniformDouble() * 0.25;
        p.dup_prob = srng.UniformDouble() * 0.15;
        p.retransmit_timeout = 0.2 + srng.UniformDouble() * 0.5;
        p.slow_poll_prob = srng.UniformDouble() * 0.3;
        p.slow_poll_delay = srng.UniformDouble() * 1.5;
        p.crash_probe_period = 0.5;
        p.active_until = sc.t_end;
        p.crashes[n->source_db] = tiers[child_ti].windows;
        p.mediator_crashes = tier.windows;
      }
      injectors.push_back(
          std::make_unique<FaultInjector>(p, seed + 1000 + link_ordinal++));
      s.faults = injectors.back().get();
      tier.sources.push_back(s.db);
      setups.push_back(s);
    }
    MediatorOptions options = sc.options;
    if (opts.durability) {
      tier.dev = std::make_unique<MemLogDevice>();
      options.durability.device = tier.dev.get();
      options.durability.wal = opts.wal;
      options.durability.checkpoint_every = opts.checkpoint_every;
      if (opts.storage_fault != FaultSimOptions::StorageFault::kNone) {
        tier.faulty = std::make_unique<FaultyLogDevice>(
            tier.dev.get(), MakeStoragePlan(opts),
            seed + 0x9E3779B9ULL * (ti + 1));
        options.durability.device = tier.faulty.get();
        options.durability.resync_on_recovery = true;
      }
    }
    SQ_ASSIGN_OR_RETURN(tier.med,
                        Mediator::Create(built.first, built.second, setups,
                                         &scheduler, options));
    SQ_RETURN_IF_ERROR(tier.med->Start());
    if (!tier.shard->is_root()) {
      SQ_ASSIGN_OR_RETURN(
          tier.exporter,
          ExportAnnouncer::Create(tier.med.get(), tier.shard->name,
                                  tier.shard->exports, &scheduler));
    }
  }

  // ---- crash/recovery schedules. A recovered child immediately re-bases
  // its mirror (epoch bump + corrective delta) so the parent's normal
  // suspect -> resyncing path re-converges; a kCorrupted child stays down
  // and the run reports the refusal like the single-mediator path does ----
  std::string recover_error;
  Status corrupted_status = Status::OK();
  auto handle_recover = [&tiers, &scheduler, &recover_error,
                         &corrupted_status](size_t ti, const Status& st) {
    tiers[ti].recovery_times.push_back(scheduler.Now());
    if (st.ok()) {
      if (!tiers[ti].shard->is_root()) {
        Status es = tiers[ti].exporter->OnChildRecovered();
        if (!es.ok() && recover_error.empty()) {
          recover_error = "shard " + tiers[ti].shard->name +
                          " re-export failed: " + es.ToString();
        }
      }
      return;
    }
    if (st.code() == StatusCode::kCorrupted) {
      if (corrupted_status.ok()) corrupted_status = st;
    } else if (recover_error.empty()) {
      recover_error = "shard " + tiers[ti].shard->name + ": " + st.ToString();
    }
  };
  for (size_t ti = 0; ti < tiers.size(); ++ti) {
    Mediator* m = tiers[ti].med.get();
    for (const CrashWindow& w : tiers[ti].windows) {
      scheduler.At(w.start, [m]() { m->Crash(); });
      scheduler.At(w.end, [&handle_recover, m, ti]() {
        handle_recover(ti, m->Recover());
      });
    }
    // Storage-fault sweeps: each tier takes its final crash+recover in
    // child-before-parent order, so a parent's recovery resync sees a
    // mirror that has already been re-based.
    if (opts.final_crash_recover) {
      scheduler.At(sc.t_end + opts.drain * 0.5 + 2.0 * ti,
                   [&handle_recover, m, ti]() {
                     handle_recover(ti, m->CrashAndRecover());
                   });
    }
  }

  // ---- schedule the pre-drawn workload: commits against the real sources,
  // queries against the root ----
  std::string bad_status;
  Mediator* root = tiers.back().med.get();
  ScheduleOps(sc, scheduler, root, &result, &bad_status);
  ScheduleStormOps(sc, scheduler, root, &result, &bad_status);

  scheduler.RunUntil(sc.t_end + opts.drain);

  result.shards = tiers.size();
  for (const auto& inj : injectors) {
    result.transmissions_lost += inj->counters().transmissions_lost;
    result.duplicates += inj->counters().duplicates;
    result.blackholed += inj->counters().blackholed;
    result.slow_polls += inj->counters().slow_polls;
    result.mediator_retransmits += inj->counters().mediator_retransmits;
    result.payloads_corrupted += inj->counters().payloads_corrupted;
  }
  for (const Tier& tier : tiers) {
    const MediatorStats& s = tier.med->stats();
    if (tier.faulty != nullptr) {
      result.storage_faults_injected +=
          static_cast<uint64_t>(tier.faulty->faults_injected());
    }
    result.mediator_crashes += s.mediator_crashes;
    result.recoveries += s.recoveries;
    result.recovery_txns_replayed += s.recovery_txns_replayed;
    result.recovery_txns_rolled_back += s.recovery_txns_rolled_back;
    result.recovery_msgs_requeued += s.recovery_msgs_requeued;
    result.wal_records += tier.med->durability().records_logged();
    result.checkpoints += tier.med->durability().checkpoints_written();
    result.coalesced_msgs += tier.med->CoalescedMessages();
    result.epoch_bumps += s.epoch_bumps;
    result.resyncs_started += s.resyncs_started;
    result.resyncs_completed += s.resyncs_completed;
    result.snapshots_requested += s.snapshots_requested;
    result.updates_dropped_resync += s.updates_dropped_resync;
    result.updates_shed += s.updates_shed;
    result.requarantines += s.requarantines;
    result.wal_append_failures += s.wal_append_failures;
    result.updates_dropped_wal += s.updates_dropped_wal;
    result.recovery_tail_repairs += s.recovery_tail_repairs;
    result.recovery_checkpoint_fallbacks += s.recovery_checkpoint_fallbacks;
    result.resyncs_after_recovery += s.resyncs_after_recovery;
    result.update_checksum_failures += s.update_checksum_failures;
    result.snapshot_checksum_failures += s.snapshot_checksum_failures;
    if (tier.exporter != nullptr) {
      result.commits_mirrored += tier.exporter->commits_mirrored();
      result.corrective_commits += tier.exporter->corrective_commits();
    }
  }
  std::set<SourceDb*> all_sources;
  for (const Tier& tier : tiers) {
    all_sources.insert(tier.sources.begin(), tier.sources.end());
  }
  for (SourceDb* db : all_sources) result.source_restarts += db->epoch() - 1;
  result.stats = root->stats();

  // Deterministic per-tier rendering: the full trace plus EVERY stats
  // counter of every mediator (replay identity covers counter drift), plus
  // the cross-tier fault/mirror summary.
  auto render_dumps = [&result, &tiers]() {
    for (const Tier& tier : tiers) {
      std::string section = "== shard " + tier.shard->name + " ==\n";
      result.trace_dump +=
          section + tier.med->trace().ToString(/*include_data=*/true);
      result.stats_dump += section + tier.med->stats().ToString();
    }
    result.trace_dump +=
        "faults: lost=" + std::to_string(result.transmissions_lost) +
        " dups=" + std::to_string(result.duplicates) +
        " blackholed=" + std::to_string(result.blackholed) +
        " slow=" + std::to_string(result.slow_polls) +
        " med_retransmits=" + std::to_string(result.mediator_retransmits) +
        " payloads=" + std::to_string(result.payloads_corrupted) +
        "\nmirror: commits=" + std::to_string(result.commits_mirrored) +
        " corrective=" + std::to_string(result.corrective_commits) +
        "\nstorage: injected=" +
        std::to_string(result.storage_faults_injected) +
        " wal_failures=" + std::to_string(result.wal_append_failures) +
        " tail_repairs=" + std::to_string(result.recovery_tail_repairs) +
        " ckpt_fallbacks=" +
        std::to_string(result.recovery_checkpoint_fallbacks) + "\n";
    result.trace_dump += result.stats_dump;
  };
  if (!corrupted_status.ok()) {
    result.corrupted = true;
    result.corrupted_diag = corrupted_status.ToString();
    render_dumps();
    result.trace_dump += "corrupted: " + result.corrupted_diag + "\n";
    return result;
  }
  if (!recover_error.empty()) {
    return Status::Internal(SeedTag(seed) +
                            "mediator recovery failed: " + recover_error);
  }
  for (const Tier& tier : tiers) {
    if (tier.med->crashed()) {
      return Status::Internal(SeedTag(seed) + "shard " + tier.shard->name +
                              " still crashed at drain");
    }
    if (tier.med->busy() || tier.med->QueueSize() != 0) {
      return Status::Internal(
          SeedTag(seed) + "shard " + tier.shard->name +
          " no quiescence after drain: busy=" +
          std::to_string(tier.med->busy()) +
          " queue=" + std::to_string(tier.med->QueueSize()));
    }
  }
  if (!bad_status.empty()) {
    return Status::Internal(SeedTag(seed) + "query failed with non-fault " +
                            "status: " + bad_status);
  }
  if (result.storm_latencies.size() != result.storm_queries) {
    return Status::Internal(
        SeedTag(seed) + "unresolved storm queries: resolved=" +
        std::to_string(result.storm_latencies.size()) + " of " +
        std::to_string(result.storm_queries));
  }

  // ---- ground truth: the root's exports must equal a from-scratch
  // recomputation of the UNSHARDED base VDP over the final real-source
  // states — the same oracle the single-mediator run checks against, so
  // passing runs are byte-identical across topologies by construction ----
  ConsistencyChecker base_checker(&sc.vdp, &sc.ann,
                                  {sc.dbs.begin(), sc.dbs.end()});
  const Time t_fq = sc.t_end + opts.drain + 10.0;
  std::map<std::string, Result<ViewAnswer>> final_answers;
  for (const std::string& exp : sc.vdp.ExportNames()) {
    ViewQuery q;
    q.relation = exp;
    q.qclass = QueryClass::kInternal;  // never refused by the gate
    final_answers.emplace(exp, Status::Internal("no answer"));
    auto* slot = &final_answers.at(exp);
    scheduler.At(t_fq, [root, q, slot]() {
      root->SubmitQuery(
          q, [slot](Result<ViewAnswer> ans) { *slot = std::move(ans); });
    });
  }
  scheduler.RunUntil(t_fq + 100.0);
  TimeVector final_at(sc.dbs.size(), sc.t_end + 1.0);
  for (const std::string& exp : sc.vdp.ExportNames()) {
    const Result<ViewAnswer>& ans = final_answers.at(exp);
    if (!ans.ok()) {
      return Status::Internal(SeedTag(seed) + "final query on " + exp +
                              " failed: " + ans.status().ToString());
    }
    if (ans.value().degraded) {
      return Status::Internal(SeedTag(seed) + "final query on " + exp +
                              " was degraded (a shard never recovered)");
    }
    SQ_ASSIGN_OR_RETURN(Relation expected,
                        base_checker.EvalNodeAt(exp, final_at));
    std::string got = RowsString(ans.value().data);
    std::string want = RowsString(expected.ToSet());
    if (got != want) {
      return Status::Internal(SeedTag(seed) + "final state of " + exp +
                              " diverged from base recomputation:\n  got  " +
                              got + "\n  want " + want);
    }
    result.final_exports += exp + ": " + got + "\n";
    ++result.exports_checked;
  }

  if (opts.require_all_healthy) {
    for (const Tier& tier : tiers) {
      std::vector<std::string> quarantined = tier.med->QuarantinedSources();
      if (!quarantined.empty()) {
        return Status::Internal(SeedTag(seed) + "shard " + tier.shard->name +
                                " source(s) still quarantined after drain: " +
                                Join(quarantined, ", "));
      }
      std::vector<std::string> unhealthy =
          tier.med->resync().UnhealthySources();
      if (!unhealthy.empty()) {
        return Status::Internal(SeedTag(seed) + "shard " + tier.shard->name +
                                " source(s) still resyncing after drain: " +
                                Join(unhealthy, ", "));
      }
    }
  }

  // ---- every tier's trace must independently pass the consistency checker
  // against the sources IT consumed (mirrors keep full commit logs, so a
  // parent's trace is checked against the child's announced history) ----
  const bool lossy_storage =
      opts.storage_fault != FaultSimOptions::StorageFault::kNone;
  for (const Tier& tier : tiers) {
    ConsistencyChecker checker(
        &tier.med->vdp(), &tier.med->annotation(),
        {tier.sources.begin(), tier.sources.end()});
    SQ_ASSIGN_OR_RETURN(
        ConsistencyReport report,
        checker.Check(tier.med->trace(), lossy_storage
                                             ? tier.recovery_times
                                             : std::vector<Time>{}));
    if (!report.consistent()) {
      return Status::Internal(
          SeedTag(seed) + "shard " + tier.shard->name +
          " trace inconsistent: " +
          (report.violations.empty() ? "no details" : report.violations[0]));
    }
  }

  render_dumps();
  return result;
}

}  // namespace

Result<FaultSimResult> RunFaultSim(uint64_t seed,
                                   const FaultSimOptions& opts) {
  if ((opts.mediator_crashes > 0 || opts.crash_at_wal_record >= 0) &&
      !opts.durability) {
    return Status::InvalidArgument(
        "mediator crashes require durability (nothing to recover from)");
  }
  if ((opts.storage_fault != FaultSimOptions::StorageFault::kNone ||
       opts.final_crash_recover) &&
      !opts.durability) {
    return Status::InvalidArgument(
        "storage faults require durability (there is no disk to lie)");
  }
  if (opts.topology != FaultSimOptions::Topology::kSingle &&
      opts.crash_at_wal_record >= 0) {
    return Status::InvalidArgument(
        "the crash-point sweep targets one WAL; it is single-mediator only");
  }
  // Pin the engine mode (and a zero size threshold, so the small sim
  // relations actually take the columnar paths) for the whole run.
  columnar::ScopedColumnarMode scoped_columnar(opts.columnar, /*min_rows=*/0);
  // Optional memory budget, installed for the whole run (build + deploy +
  // drain) so arenas, join tables, snapshots and queues all account to it.
  std::unique_ptr<MemoryBudget> budget;
  std::optional<ScopedMemoryBudget> scoped_budget;
  if (opts.memory_soft_limit > 0 || opts.memory_hard_limit > 0) {
    budget = std::make_unique<MemoryBudget>(opts.memory_soft_limit,
                                            opts.memory_hard_limit);
    scoped_budget.emplace(budget.get());
  }
  SQ_ASSIGN_OR_RETURN(Scenario sc, BuildScenario(seed, opts));
  FaultSimResult result;
  result.seed = seed;
  result.fault_plan_dump = std::move(sc.fault_plan_dump);
  Result<FaultSimResult> run =
      opts.topology == FaultSimOptions::Topology::kSingle
          ? RunSingle(seed, opts, sc, std::move(result))
          : RunSharded(seed, opts, sc, std::move(result));
  if (run.ok() && budget != nullptr) {
    run.value().budget_peak = budget->peak();
    run.value().budget_hard_cancels = budget->hard_cancels();
  }
  return run;
}

}  // namespace testing
}  // namespace squirrel
