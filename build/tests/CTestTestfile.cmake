# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational_tests[1]_include.cmake")
include("/root/repo/build/tests/delta_tests[1]_include.cmake")
include("/root/repo/build/tests/vdp_tests[1]_include.cmake")
include("/root/repo/build/tests/mediator_core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_fault_sweep[1]_include.cmake")
include("/root/repo/build/tests/sim_source_tests[1]_include.cmake")
include("/root/repo/build/tests/scenario_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/planner_spec_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_components_tests[1]_include.cmake")
include("/root/repo/build/tests/common_tests[1]_include.cmake")
