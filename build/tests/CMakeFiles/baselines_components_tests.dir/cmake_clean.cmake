file(REMOVE_RECURSE
  "CMakeFiles/baselines_components_tests.dir/baselines/baselines_test.cc.o"
  "CMakeFiles/baselines_components_tests.dir/baselines/baselines_test.cc.o.d"
  "CMakeFiles/baselines_components_tests.dir/mediator/components_test.cc.o"
  "CMakeFiles/baselines_components_tests.dir/mediator/components_test.cc.o.d"
  "baselines_components_tests"
  "baselines_components_tests.pdb"
  "baselines_components_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_components_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
