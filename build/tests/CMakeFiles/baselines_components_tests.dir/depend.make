# Empty dependencies file for baselines_components_tests.
# This may be replaced when dependencies are built.
