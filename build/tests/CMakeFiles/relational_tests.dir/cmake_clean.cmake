file(REMOVE_RECURSE
  "CMakeFiles/relational_tests.dir/relational/expr_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/expr_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational/operators_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/operators_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational/parser_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/parser_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational/relation_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/relation_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational/schema_tuple_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/schema_tuple_test.cc.o.d"
  "CMakeFiles/relational_tests.dir/relational/value_test.cc.o"
  "CMakeFiles/relational_tests.dir/relational/value_test.cc.o.d"
  "relational_tests"
  "relational_tests.pdb"
  "relational_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
