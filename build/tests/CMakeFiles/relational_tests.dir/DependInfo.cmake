
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/relational/expr_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/expr_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/expr_test.cc.o.d"
  "/root/repo/tests/relational/operators_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/operators_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/operators_test.cc.o.d"
  "/root/repo/tests/relational/parser_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/parser_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/parser_test.cc.o.d"
  "/root/repo/tests/relational/relation_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/relation_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/relation_test.cc.o.d"
  "/root/repo/tests/relational/schema_tuple_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/schema_tuple_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/schema_tuple_test.cc.o.d"
  "/root/repo/tests/relational/value_test.cc" "tests/CMakeFiles/relational_tests.dir/relational/value_test.cc.o" "gcc" "tests/CMakeFiles/relational_tests.dir/relational/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/squirrel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
