file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/delta_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/delta_property_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/incremental_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/incremental_property_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/sim_consistency_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/sim_consistency_property_test.cc.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
