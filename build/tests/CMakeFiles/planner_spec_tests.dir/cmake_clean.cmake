file(REMOVE_RECURSE
  "CMakeFiles/planner_spec_tests.dir/mediator/spec_test.cc.o"
  "CMakeFiles/planner_spec_tests.dir/mediator/spec_test.cc.o.d"
  "CMakeFiles/planner_spec_tests.dir/vdp/planner_test.cc.o"
  "CMakeFiles/planner_spec_tests.dir/vdp/planner_test.cc.o.d"
  "planner_spec_tests"
  "planner_spec_tests.pdb"
  "planner_spec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_spec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
