# Empty dependencies file for planner_spec_tests.
# This may be replaced when dependencies are built.
