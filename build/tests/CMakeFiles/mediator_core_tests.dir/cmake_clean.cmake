file(REMOVE_RECURSE
  "CMakeFiles/mediator_core_tests.dir/mediator/iup_test.cc.o"
  "CMakeFiles/mediator_core_tests.dir/mediator/iup_test.cc.o.d"
  "CMakeFiles/mediator_core_tests.dir/mediator/vap_test.cc.o"
  "CMakeFiles/mediator_core_tests.dir/mediator/vap_test.cc.o.d"
  "mediator_core_tests"
  "mediator_core_tests.pdb"
  "mediator_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
