# Empty compiler generated dependencies file for mediator_core_tests.
# This may be replaced when dependencies are built.
