file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/common_test.cc.o"
  "CMakeFiles/common_tests.dir/common/common_test.cc.o.d"
  "CMakeFiles/common_tests.dir/relational/index_algebra_test.cc.o"
  "CMakeFiles/common_tests.dir/relational/index_algebra_test.cc.o.d"
  "CMakeFiles/common_tests.dir/vdp/node_def_test.cc.o"
  "CMakeFiles/common_tests.dir/vdp/node_def_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
