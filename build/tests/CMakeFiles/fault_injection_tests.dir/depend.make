# Empty dependencies file for fault_injection_tests.
# This may be replaced when dependencies are built.
