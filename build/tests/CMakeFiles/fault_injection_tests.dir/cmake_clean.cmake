file(REMOVE_RECURSE
  "CMakeFiles/fault_injection_tests.dir/integration/fault_injection_test.cc.o"
  "CMakeFiles/fault_injection_tests.dir/integration/fault_injection_test.cc.o.d"
  "CMakeFiles/fault_injection_tests.dir/testing/sim_harness.cc.o"
  "CMakeFiles/fault_injection_tests.dir/testing/sim_harness.cc.o.d"
  "fault_injection_tests"
  "fault_injection_tests.pdb"
  "fault_injection_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_injection_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
