file(REMOVE_RECURSE
  "CMakeFiles/sim_fault_sweep.dir/property/fault_sweep_test.cc.o"
  "CMakeFiles/sim_fault_sweep.dir/property/fault_sweep_test.cc.o.d"
  "CMakeFiles/sim_fault_sweep.dir/testing/sim_harness.cc.o"
  "CMakeFiles/sim_fault_sweep.dir/testing/sim_harness.cc.o.d"
  "sim_fault_sweep"
  "sim_fault_sweep.pdb"
  "sim_fault_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fault_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
