# Empty dependencies file for sim_fault_sweep.
# This may be replaced when dependencies are built.
