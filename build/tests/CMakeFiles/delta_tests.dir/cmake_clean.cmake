file(REMOVE_RECURSE
  "CMakeFiles/delta_tests.dir/delta/delta_algebra_test.cc.o"
  "CMakeFiles/delta_tests.dir/delta/delta_algebra_test.cc.o.d"
  "CMakeFiles/delta_tests.dir/delta/delta_test.cc.o"
  "CMakeFiles/delta_tests.dir/delta/delta_test.cc.o.d"
  "delta_tests"
  "delta_tests.pdb"
  "delta_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
