# Empty dependencies file for delta_tests.
# This may be replaced when dependencies are built.
