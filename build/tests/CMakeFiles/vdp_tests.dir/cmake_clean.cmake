file(REMOVE_RECURSE
  "CMakeFiles/vdp_tests.dir/vdp/rules_test.cc.o"
  "CMakeFiles/vdp_tests.dir/vdp/rules_test.cc.o.d"
  "CMakeFiles/vdp_tests.dir/vdp/vdp_test.cc.o"
  "CMakeFiles/vdp_tests.dir/vdp/vdp_test.cc.o.d"
  "vdp_tests"
  "vdp_tests.pdb"
  "vdp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
