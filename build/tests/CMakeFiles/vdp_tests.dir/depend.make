# Empty dependencies file for vdp_tests.
# This may be replaced when dependencies are built.
