file(REMOVE_RECURSE
  "CMakeFiles/sim_source_tests.dir/sim/sim_test.cc.o"
  "CMakeFiles/sim_source_tests.dir/sim/sim_test.cc.o.d"
  "CMakeFiles/sim_source_tests.dir/source/source_test.cc.o"
  "CMakeFiles/sim_source_tests.dir/source/source_test.cc.o.d"
  "sim_source_tests"
  "sim_source_tests.pdb"
  "sim_source_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_source_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
