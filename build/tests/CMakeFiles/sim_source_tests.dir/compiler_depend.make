# Empty compiler generated dependencies file for sim_source_tests.
# This may be replaced when dependencies are built.
