
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/figure2_test.cc" "tests/CMakeFiles/scenario_tests.dir/integration/figure2_test.cc.o" "gcc" "tests/CMakeFiles/scenario_tests.dir/integration/figure2_test.cc.o.d"
  "/root/repo/tests/integration/union_and_virtual_test.cc" "tests/CMakeFiles/scenario_tests.dir/integration/union_and_virtual_test.cc.o" "gcc" "tests/CMakeFiles/scenario_tests.dir/integration/union_and_virtual_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/squirrel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
