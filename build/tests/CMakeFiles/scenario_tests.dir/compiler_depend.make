# Empty compiler generated dependencies file for scenario_tests.
# This may be replaced when dependencies are built.
