file(REMOVE_RECURSE
  "CMakeFiles/scenario_tests.dir/integration/figure2_test.cc.o"
  "CMakeFiles/scenario_tests.dir/integration/figure2_test.cc.o.d"
  "CMakeFiles/scenario_tests.dir/integration/union_and_virtual_test.cc.o"
  "CMakeFiles/scenario_tests.dir/integration/union_and_virtual_test.cc.o.d"
  "scenario_tests"
  "scenario_tests.pdb"
  "scenario_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
