file(REMOVE_RECURSE
  "libsquirrel.a"
)
