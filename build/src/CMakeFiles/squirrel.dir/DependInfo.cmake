
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/virtual_mediator.cc" "src/CMakeFiles/squirrel.dir/baselines/virtual_mediator.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/baselines/virtual_mediator.cc.o.d"
  "/root/repo/src/baselines/zgh_warehouse.cc" "src/CMakeFiles/squirrel.dir/baselines/zgh_warehouse.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/baselines/zgh_warehouse.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/squirrel.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/squirrel.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/squirrel.dir/common/status.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/squirrel.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/common/strings.cc.o.d"
  "/root/repo/src/delta/delta.cc" "src/CMakeFiles/squirrel.dir/delta/delta.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/delta/delta.cc.o.d"
  "/root/repo/src/delta/delta_algebra.cc" "src/CMakeFiles/squirrel.dir/delta/delta_algebra.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/delta/delta_algebra.cc.o.d"
  "/root/repo/src/mediator/consistency.cc" "src/CMakeFiles/squirrel.dir/mediator/consistency.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/consistency.cc.o.d"
  "/root/repo/src/mediator/contributor.cc" "src/CMakeFiles/squirrel.dir/mediator/contributor.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/contributor.cc.o.d"
  "/root/repo/src/mediator/freshness.cc" "src/CMakeFiles/squirrel.dir/mediator/freshness.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/freshness.cc.o.d"
  "/root/repo/src/mediator/iup.cc" "src/CMakeFiles/squirrel.dir/mediator/iup.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/iup.cc.o.d"
  "/root/repo/src/mediator/local_store.cc" "src/CMakeFiles/squirrel.dir/mediator/local_store.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/local_store.cc.o.d"
  "/root/repo/src/mediator/mediator.cc" "src/CMakeFiles/squirrel.dir/mediator/mediator.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/mediator.cc.o.d"
  "/root/repo/src/mediator/query.cc" "src/CMakeFiles/squirrel.dir/mediator/query.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/query.cc.o.d"
  "/root/repo/src/mediator/query_processor.cc" "src/CMakeFiles/squirrel.dir/mediator/query_processor.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/query_processor.cc.o.d"
  "/root/repo/src/mediator/spec.cc" "src/CMakeFiles/squirrel.dir/mediator/spec.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/spec.cc.o.d"
  "/root/repo/src/mediator/trace.cc" "src/CMakeFiles/squirrel.dir/mediator/trace.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/trace.cc.o.d"
  "/root/repo/src/mediator/update_queue.cc" "src/CMakeFiles/squirrel.dir/mediator/update_queue.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/update_queue.cc.o.d"
  "/root/repo/src/mediator/vap.cc" "src/CMakeFiles/squirrel.dir/mediator/vap.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/mediator/vap.cc.o.d"
  "/root/repo/src/relational/algebra.cc" "src/CMakeFiles/squirrel.dir/relational/algebra.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/algebra.cc.o.d"
  "/root/repo/src/relational/expr.cc" "src/CMakeFiles/squirrel.dir/relational/expr.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/expr.cc.o.d"
  "/root/repo/src/relational/index.cc" "src/CMakeFiles/squirrel.dir/relational/index.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/index.cc.o.d"
  "/root/repo/src/relational/operators.cc" "src/CMakeFiles/squirrel.dir/relational/operators.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/operators.cc.o.d"
  "/root/repo/src/relational/parser.cc" "src/CMakeFiles/squirrel.dir/relational/parser.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/parser.cc.o.d"
  "/root/repo/src/relational/relation.cc" "src/CMakeFiles/squirrel.dir/relational/relation.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/squirrel.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/squirrel.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/squirrel.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/relational/value.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/squirrel.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/fault.cc" "src/CMakeFiles/squirrel.dir/sim/fault.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/sim/fault.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/squirrel.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/squirrel.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/source/announcer.cc" "src/CMakeFiles/squirrel.dir/source/announcer.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/source/announcer.cc.o.d"
  "/root/repo/src/source/source_db.cc" "src/CMakeFiles/squirrel.dir/source/source_db.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/source/source_db.cc.o.d"
  "/root/repo/src/vdp/annotation.cc" "src/CMakeFiles/squirrel.dir/vdp/annotation.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/annotation.cc.o.d"
  "/root/repo/src/vdp/builder.cc" "src/CMakeFiles/squirrel.dir/vdp/builder.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/builder.cc.o.d"
  "/root/repo/src/vdp/node_def.cc" "src/CMakeFiles/squirrel.dir/vdp/node_def.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/node_def.cc.o.d"
  "/root/repo/src/vdp/paper_examples.cc" "src/CMakeFiles/squirrel.dir/vdp/paper_examples.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/paper_examples.cc.o.d"
  "/root/repo/src/vdp/planner.cc" "src/CMakeFiles/squirrel.dir/vdp/planner.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/planner.cc.o.d"
  "/root/repo/src/vdp/rules.cc" "src/CMakeFiles/squirrel.dir/vdp/rules.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/rules.cc.o.d"
  "/root/repo/src/vdp/vdp.cc" "src/CMakeFiles/squirrel.dir/vdp/vdp.cc.o" "gcc" "src/CMakeFiles/squirrel.dir/vdp/vdp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
