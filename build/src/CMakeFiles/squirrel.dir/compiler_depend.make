# Empty compiler generated dependencies file for squirrel.
# This may be replaced when dependencies are built.
