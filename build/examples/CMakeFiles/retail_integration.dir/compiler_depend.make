# Empty compiler generated dependencies file for retail_integration.
# This may be replaced when dependencies are built.
