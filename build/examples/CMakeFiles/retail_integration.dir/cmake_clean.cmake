file(REMOVE_RECURSE
  "CMakeFiles/retail_integration.dir/retail_integration.cpp.o"
  "CMakeFiles/retail_integration.dir/retail_integration.cpp.o.d"
  "retail_integration"
  "retail_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
