# Empty compiler generated dependencies file for annotation_advisor.
# This may be replaced when dependencies are built.
