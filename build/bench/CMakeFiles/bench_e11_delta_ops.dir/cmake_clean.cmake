file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_delta_ops.dir/bench_e11_delta_ops.cc.o"
  "CMakeFiles/bench_e11_delta_ops.dir/bench_e11_delta_ops.cc.o.d"
  "bench_e11_delta_ops"
  "bench_e11_delta_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_delta_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
