# Empty compiler generated dependencies file for bench_e11_delta_ops.
# This may be replaced when dependencies are built.
