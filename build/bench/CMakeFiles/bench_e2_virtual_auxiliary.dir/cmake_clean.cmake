file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_virtual_auxiliary.dir/bench_e2_virtual_auxiliary.cc.o"
  "CMakeFiles/bench_e2_virtual_auxiliary.dir/bench_e2_virtual_auxiliary.cc.o.d"
  "bench_e2_virtual_auxiliary"
  "bench_e2_virtual_auxiliary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_virtual_auxiliary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
