# Empty compiler generated dependencies file for bench_e2_virtual_auxiliary.
# This may be replaced when dependencies are built.
