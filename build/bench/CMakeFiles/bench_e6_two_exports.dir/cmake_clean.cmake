file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_two_exports.dir/bench_e6_two_exports.cc.o"
  "CMakeFiles/bench_e6_two_exports.dir/bench_e6_two_exports.cc.o.d"
  "bench_e6_two_exports"
  "bench_e6_two_exports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_two_exports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
