file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_crossover.dir/bench_e9_crossover.cc.o"
  "CMakeFiles/bench_e9_crossover.dir/bench_e9_crossover.cc.o.d"
  "bench_e9_crossover"
  "bench_e9_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
