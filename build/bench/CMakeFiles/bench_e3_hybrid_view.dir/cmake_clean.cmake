file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_hybrid_view.dir/bench_e3_hybrid_view.cc.o"
  "CMakeFiles/bench_e3_hybrid_view.dir/bench_e3_hybrid_view.cc.o.d"
  "bench_e3_hybrid_view"
  "bench_e3_hybrid_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_hybrid_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
