# Empty compiler generated dependencies file for bench_e3_hybrid_view.
# This may be replaced when dependencies are built.
