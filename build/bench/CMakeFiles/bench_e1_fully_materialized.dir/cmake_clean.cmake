file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_fully_materialized.dir/bench_e1_fully_materialized.cc.o"
  "CMakeFiles/bench_e1_fully_materialized.dir/bench_e1_fully_materialized.cc.o.d"
  "bench_e1_fully_materialized"
  "bench_e1_fully_materialized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_fully_materialized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
