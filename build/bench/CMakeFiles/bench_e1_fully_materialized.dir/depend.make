# Empty dependencies file for bench_e1_fully_materialized.
# This may be replaced when dependencies are built.
