# Empty compiler generated dependencies file for bench_e4_consistency_check.
# This may be replaced when dependencies are built.
