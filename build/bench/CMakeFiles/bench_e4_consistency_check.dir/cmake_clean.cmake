file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_consistency_check.dir/bench_e4_consistency_check.cc.o"
  "CMakeFiles/bench_e4_consistency_check.dir/bench_e4_consistency_check.cc.o.d"
  "bench_e4_consistency_check"
  "bench_e4_consistency_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_consistency_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
