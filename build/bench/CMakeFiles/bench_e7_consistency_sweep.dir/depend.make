# Empty dependencies file for bench_e7_consistency_sweep.
# This may be replaced when dependencies are built.
