# Empty compiler generated dependencies file for bench_e10_annotation_ablation.
# This may be replaced when dependencies are built.
