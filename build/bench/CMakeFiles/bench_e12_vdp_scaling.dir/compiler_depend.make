# Empty compiler generated dependencies file for bench_e12_vdp_scaling.
# This may be replaced when dependencies are built.
