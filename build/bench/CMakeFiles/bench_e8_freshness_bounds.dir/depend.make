# Empty dependencies file for bench_e8_freshness_bounds.
# This may be replaced when dependencies are built.
