file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_freshness_bounds.dir/bench_e8_freshness_bounds.cc.o"
  "CMakeFiles/bench_e8_freshness_bounds.dir/bench_e8_freshness_bounds.cc.o.d"
  "bench_e8_freshness_bounds"
  "bench_e8_freshness_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_freshness_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
