// Experiment E11 (§6.2 substrate): the Heraclitus delta toolkit.
//
// Microbenchmarks of the operators the whole mediator machinery is built
// from: smash (!), apply, inverse, σ/π filtering, and delta-relation joins,
// across delta and relation sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "delta/delta_algebra.h"
#include "relational/parser.h"

namespace squirrel {
namespace bench {
namespace {

Schema TwoCol() { return SchemaOf("R(a, b)"); }

Delta RandomDelta(Rng* rng, int atoms, int64_t domain) {
  Delta d(TwoCol());
  for (int i = 0; i < atoms; ++i) {
    Tuple t({rng->UniformInt(0, domain), rng->UniformInt(0, domain)});
    Check(d.Add(t, rng->Bernoulli(0.5) ? 1 : -1), "add");
  }
  return d;
}

Relation RandomRel(Rng* rng, int rows, int64_t domain) {
  Relation r(TwoCol(), Semantics::kBag);
  for (int i = 0; i < rows; ++i) {
    Check(r.Insert(Tuple({rng->UniformInt(0, domain),
                          rng->UniformInt(0, domain)}),
                   1 + static_cast<int64_t>(rng->Uniform(2))),
          "insert");
  }
  return r;
}

void BM_E11_Smash(benchmark::State& state) {
  Rng rng(1);
  const int atoms = static_cast<int>(state.range(0));
  Delta d1 = RandomDelta(&rng, atoms, atoms * 4);
  Delta d2 = RandomDelta(&rng, atoms, atoms * 4);
  for (auto _ : state) {
    Delta out = Unwrap(Delta::Smash(d1, d2), "smash");
    benchmark::DoNotOptimize(out.AtomCount());
  }
  state.SetItemsProcessed(state.iterations() * atoms * 2);
}
BENCHMARK(BM_E11_Smash)->Arg(64)->Arg(1024)->Arg(16384);

void BM_E11_Inverse(benchmark::State& state) {
  Rng rng(2);
  Delta d = RandomDelta(&rng, static_cast<int>(state.range(0)),
                        state.range(0) * 4);
  for (auto _ : state) {
    Delta out = d.Inverse();
    benchmark::DoNotOptimize(out.AtomCount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_E11_Inverse)->Arg(64)->Arg(1024)->Arg(16384);

void BM_E11_Apply(benchmark::State& state) {
  Rng rng(3);
  const int rows = static_cast<int>(state.range(0));
  Relation base = RandomRel(&rng, rows, rows);
  // Insert-only delta so strict apply always succeeds, inverse restores.
  Delta d(TwoCol());
  for (int i = 0; i < rows / 8 + 1; ++i) {
    Check(d.Add(Tuple({rng.UniformInt(rows + 1, rows * 2),
                       rng.UniformInt(0, rows)}),
                1),
          "add");
  }
  Delta inv = d.Inverse();
  for (auto _ : state) {
    Check(ApplyDelta(&base, d), "apply");
    Check(ApplyDelta(&base, inv), "unapply");
  }
  state.SetItemsProcessed(state.iterations() * d.AtomCount() * 2);
}
BENCHMARK(BM_E11_Apply)->Arg(256)->Arg(4096)->Arg(65536);

void BM_E11_FilterToLeafParent(benchmark::State& state) {
  Rng rng(4);
  Delta d = RandomDelta(&rng, static_cast<int>(state.range(0)),
                        state.range(0) * 4);
  Expr::Ptr cond = Unwrap(ParsePredicate("a < 100 AND b > 2"), "cond");
  std::vector<std::string> attrs = {"a"};
  for (auto _ : state) {
    Delta out = Unwrap(FilterDeltaToLeafParent(d, cond, attrs), "filter");
    benchmark::DoNotOptimize(out.AtomCount());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_E11_FilterToLeafParent)->Arg(64)->Arg(1024)->Arg(16384);

void BM_E11_DeltaJoinRelation(benchmark::State& state) {
  Rng rng(5);
  const int rel_rows = static_cast<int>(state.range(0));
  const int delta_atoms = static_cast<int>(state.range(1));
  Relation s(SchemaOf("S(c, d)"), Semantics::kBag);
  for (int i = 0; i < rel_rows; ++i) {
    Check(s.Insert(Tuple({rng.UniformInt(0, rel_rows),
                          rng.UniformInt(0, 100)})),
          "insert");
  }
  Delta d(TwoCol());
  for (int i = 0; i < delta_atoms; ++i) {
    Check(d.Add(Tuple({rng.UniformInt(0, 1000),
                       rng.UniformInt(0, rel_rows)}),
                rng.Bernoulli(0.5) ? 1 : -1),
          "add");
  }
  Expr::Ptr cond = Unwrap(ParsePredicate("b = c"), "cond");
  for (auto _ : state) {
    Delta out = Unwrap(DeltaJoinRelation(d, s, cond), "join");
    benchmark::DoNotOptimize(out.AtomCount());
  }
  state.SetItemsProcessed(state.iterations() * delta_atoms);
}
BENCHMARK(BM_E11_DeltaJoinRelation)
    ->Args({1000, 16})
    ->Args({10000, 16})
    ->Args({100000, 16})
    ->Args({10000, 256});

void BM_E11_PresenceDelta(benchmark::State& state) {
  Rng rng(6);
  const int rows = static_cast<int>(state.range(0));
  Relation base = RandomRel(&rng, rows, rows / 2);
  Delta d(TwoCol());
  base.ForEach([&](const Tuple& t, int64_t) {
    if (rng.Bernoulli(0.2)) Check(d.Add(t, -1), "add");
  });
  Relation after = base;
  Check(ApplyDelta(&after, d), "apply");
  for (auto _ : state) {
    Delta out = Unwrap(PresenceDelta(after, d), "presence");
    benchmark::DoNotOptimize(out.AtomCount());
  }
}
BENCHMARK(BM_E11_PresenceDelta)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace bench
}  // namespace squirrel

BENCHMARK_MAIN();
