// Experiment E8 (Theorem 7.2): guaranteed freshness.
//
// Sweeps announcement delay and the mediator's queue-flush period and
// reports, per source, the measured worst-case staleness of query answers
// against the theorem's bound vector f. The paper's claim: measured <= f
// for every configuration; staleness grows with ann_delay + u_hold while
// the bound tracks it.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mediator/freshness.h"

namespace squirrel {
namespace bench {
namespace {

void E8Table() {
  Table table({"ann_delay", "update_period", "source", "kind",
               "max_staleness", "mean", "bound_f", "within"});
  for (double ann_delay : {0.0, 2.0, 8.0}) {
    for (double update_period : {0.0, 4.0}) {
      MediatorOptions options;
      options.update_period = update_period;
      options.u_proc_delay = 0.05;
      options.q_proc_delay = 0.05;
      Fig1System sys = MakeFig1System(AnnotationExample21(), options,
                                      /*comm=*/0.5, /*q_proc=*/0.2,
                                      /*announce=*/ann_delay);
      sys.Seed(200, 16);
      Check(sys.mediator->Start(), "start");
      Time now = 1.0;
      Rng rng(99);
      for (int i = 0; i < 60; ++i) {
        if (rng.Bernoulli(0.7)) {
          sys.InsertR(now);
        } else {
          sys.InsertS(now);
        }
        sys.scheduler->At(now + 0.5 + rng.UniformDouble() * 3, [&sys]() {
          sys.mediator->SubmitQuery(
              ViewQuery{"T", {"r1", "s1"}, nullptr},
              [](Result<ViewAnswer> ans) { Check(ans.status(), "query"); });
        });
        now += 4.0 + rng.UniformDouble() * 2;
        AdvanceTo(sys.scheduler.get(), now);
      }
      AdvanceTo(sys.scheduler.get(), now + 100.0);
      FreshnessReport report = CheckFreshness(
          sys.mediator->trace(), sys.mediator->DelayProfiles(),
          sys.mediator->Delays(), sys.mediator->ContributorKinds(),
          {sys.db1.get(), sys.db2.get()});
      for (const auto& sf : report.per_source) {
        table.AddRow({Table::Num(ann_delay, 1), Table::Num(update_period, 1),
                      sf.source, ContributorKindName(sf.kind),
                      Table::Num(sf.max_staleness, 2),
                      Table::Num(sf.mean_staleness, 2),
                      Table::Num(sf.bound, 2),
                      sf.within_bound ? "yes" : "VIOLATED"});
      }
    }
  }
  table.Print(
      "E8 (Theorem 7.2): measured staleness vs freshness bound f (paper "
      "claim: every row within bound; staleness scales with ann_delay and "
      "update_period)");
}

/// How the bound itself decomposes across the delay knobs.
void E8BoundTable() {
  Table table({"ann", "comm", "u_hold", "u_proc", "q_proc_src", "q_proc_med",
               "f_mat/hybrid", "f_virtual"});
  for (double ann : {0.0, 5.0}) {
    for (double comm : {0.5, 2.0}) {
      std::vector<DelayProfile> profiles = {{ann, comm, 0.2},
                                            {ann, comm, 0.2}};
      MediatorDelays med{/*u_hold=*/2.0, /*u_proc=*/0.1, /*q_proc=*/0.1};
      std::vector<ContributorKind> kinds = {ContributorKind::kMaterialized,
                                            ContributorKind::kVirtual};
      std::vector<Time> f = FreshnessBound(profiles, med, kinds);
      table.AddRow({Table::Num(ann, 1), Table::Num(comm, 1), "2.0", "0.1",
                    "0.2", "0.1", Table::Num(f[0], 2), Table::Num(f[1], 2)});
    }
  }
  table.Print("E8b: Theorem 7.2 bound decomposition");
}

void BM_E8_FreshnessCheck(benchmark::State& state) {
  Fig1System sys = MakeFig1System(AnnotationExample21(), MediatorOptions{});
  sys.Seed(100, 16);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  for (int i = 0; i < 50; ++i) {
    sys.InsertR(now);
    sys.scheduler->At(now + 0.5, [&sys]() {
      sys.mediator->SubmitQuery(ViewQuery{"T", {"r1"}, nullptr},
                                [](Result<ViewAnswer> ans) {
                                  Check(ans.status(), "q");
                                });
    });
    now += 2.0;
    Drain(sys.scheduler.get());
  }
  for (auto _ : state) {
    FreshnessReport report = CheckFreshness(
        sys.mediator->trace(), sys.mediator->DelayProfiles(),
        sys.mediator->Delays(), sys.mediator->ContributorKinds(),
        {sys.db1.get(), sys.db2.get()});
    benchmark::DoNotOptimize(report.all_within_bound);
  }
}
BENCHMARK(BM_E8_FreshnessCheck);

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E8Table();
  squirrel::bench::E8BoundTable();
  return 0;
}
