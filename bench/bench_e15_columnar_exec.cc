// Experiment E15: columnar batch execution vs the row-at-a-time engine.
//
// Two layers of measurement, both median-of-3 and both cross-checked for
// byte-identical results (exports_match):
//
//  1. Operator kernels — OpSelect, OpProject, OpJoin and DeltaJoinRelation
//     over generated relations at each scale, timed once with the columnar
//     engine disabled (the row oracle) and once with it forced on
//     (ScopedColumnarMode with a zero size threshold). Reported as rows/sec
//     over the input cardinality.
//
//  2. End-to-end — the E13 mediator stack (LocalStore + VAP + IUP over a
//     fully materialized R' ⋈_{r2=s1} S' view) driving batched updates
//     through Iup::RunKernel, plus a σ/π query mix over the materialized
//     view, in both engine modes. Same batch sequences, and the final
//     repositories must be EqualContents across modes.
//
// Standalone driver in the E13/E14 mold: emits a JSON report (default
// BENCH_pr7.json) that bench/run_bench.sh commits as the PR baseline and
// that the SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e15_columnar_exec [--smoke] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "delta/delta_algebra.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/vap.h"
#include "relational/columnar.h"
#include "relational/operators.h"
#include "relational/parser.h"
#include "vdp/annotation.h"
#include "vdp/builder.h"

namespace squirrel {
namespace bench {
namespace {

constexpr int kReps = 3;  // median-of-3 everywhere

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times \p fn (which must not depend on prior invocations) kReps times and
/// returns the median wall-clock milliseconds.
double TimeMedian(const std::function<void()>& fn) {
  std::vector<double> samples;
  for (int i = 0; i < kReps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  return MedianMs(std::move(samples));
}

struct KernelStats {
  double row_ms = 0;
  double columnar_ms = 0;
  double row_rows_per_sec = 0;
  double columnar_rows_per_sec = 0;
  double speedup = 0;
  bool exports_match = false;
};

struct EndToEndStats {
  double row_iup_ms = 0;
  double columnar_iup_ms = 0;
  double row_query_ms = 0;
  double columnar_query_ms = 0;
  double iup_speedup = 0;
  double query_speedup = 0;
  bool exports_match = false;
};

struct ScaleReport {
  int rows = 0;
  int batches = 0;
  std::vector<std::pair<std::string, KernelStats>> kernels;
  EndToEndStats end_to_end;
};

// ---------------------------------------------------------------------------
// Operator kernels
// ---------------------------------------------------------------------------

/// Generated inputs shared by every kernel at one scale. The string column
// exercises the arena/intern path; b is the join key with ~uniform fanout 1.
struct KernelData {
  Relation r;      // R(a, b, s string), N rows
  Relation s;      // S(x, y), N rows keyed x = 0..N-1
  Delta r_delta;   // mixed-sign delta over R's schema, N/10 atoms
  Expr::Ptr select_pred;  // b < N/2  (~50% selectivity)
  Expr::Ptr join_pred;    // b = x

  KernelData(int rows, uint64_t seed)
      : r(SchemaOf("R(a, b, s string)"), Semantics::kBag),
        s(SchemaOf("S(x, y)"), Semantics::kBag),
        r_delta(SchemaOf("R(a, b, s string)")) {
    Rng rng(seed);
    for (int i = 0; i < rows; ++i) {
      int64_t b = rng.UniformInt(0, rows - 1);
      std::string tag = "tag" + std::to_string(i % 64);
      Check(r.Insert(Tuple({int64_t{i}, b, tag})), "seed R");
      Check(s.Insert(Tuple({int64_t{i}, rng.UniformInt(0, 999)})), "seed S");
    }
    for (int i = 0; i < std::max(1, rows / 10); ++i) {
      int64_t b = rng.UniformInt(0, rows - 1);
      std::string tag = "tag" + std::to_string(i % 64);
      Check(r_delta.Add(Tuple({int64_t{rows + i}, b, tag}),
                        rng.Bernoulli(0.3) ? -1 : 1),
            "delta atom");
    }
    select_pred = Unwrap(ParsePredicate("b < " + std::to_string(rows / 2)),
                         "select pred");
    join_pred = Unwrap(ParsePredicate("b = x"), "join pred");
  }
};

/// Runs one kernel in both engine modes, cross-checks the results, and
/// fills in the timing/throughput stats. \p input_rows is the denominator
/// for rows/sec (input cardinality, or delta atoms for the delta join).
template <typename Fn>
KernelStats RunKernel(size_t input_rows, Fn&& op) {
  KernelStats k;
  auto row_result = [&] {
    columnar::ScopedColumnarMode scoped(false);
    return op();
  }();
  auto col_result = [&] {
    columnar::ScopedColumnarMode scoped(true, /*min_rows=*/0);
    return op();
  }();
  k.exports_match = row_result.EqualContents(col_result);

  k.row_ms = TimeMedian([&] {
    columnar::ScopedColumnarMode scoped(false);
    op();
  });
  k.columnar_ms = TimeMedian([&] {
    columnar::ScopedColumnarMode scoped(true, /*min_rows=*/0);
    op();
  });
  const double n = static_cast<double>(input_rows);
  k.row_rows_per_sec = n / (k.row_ms / 1000.0);
  k.columnar_rows_per_sec = n / (k.columnar_ms / 1000.0);
  k.speedup = k.row_ms / k.columnar_ms;
  return k;
}

std::vector<std::pair<std::string, KernelStats>> RunKernels(int rows,
                                                            uint64_t seed) {
  KernelData d(rows, seed);
  std::vector<std::pair<std::string, KernelStats>> out;
  out.emplace_back("select", RunKernel(d.r.DistinctSize(), [&] {
    return Unwrap(OpSelect(d.r, d.select_pred), "select");
  }));
  out.emplace_back("project", RunKernel(d.r.DistinctSize(), [&] {
    return Unwrap(OpProject(d.r, {"a", "b"}), "project");
  }));
  out.emplace_back("join", RunKernel(d.r.DistinctSize(), [&] {
    return Unwrap(OpJoin(d.r, d.s, d.join_pred), "join");
  }));
  out.emplace_back("delta_join", RunKernel(d.r_delta.AtomCount(), [&] {
    return Unwrap(DeltaJoinRelation(d.r_delta, d.s, d.join_pred),
                  "delta join");
  }));
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end mediator stack (mirrors bench_e13's workload)
// ---------------------------------------------------------------------------

Result<Vdp> BuildVdp() {
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(r1, r2) key(r1)");
  b.Leaf("S", "DB2", "S", "S(s1, s2) key(s1)");
  b.LeafParent("R'", "R", {"r1", "r2"}, "");
  b.LeafParent("S'", "S", {"s1", "s2"}, "");
  b.Spj("T", {{"R'", {"r1", "r2"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r1", "s1", "s2"}, "", /*exported=*/true);
  return b.Build();
}

struct Workload {
  Relation r_base{SchemaOf("R(r1, r2)"), Semantics::kBag};
  Relation s_base{SchemaOf("S(s1, s2)"), Semantics::kBag};
  std::vector<Delta> batches;
};

Workload MakeWorkload(int rows, int batches, int batch_atoms, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  std::map<int64_t, int64_t> live;
  for (int i = 0; i < rows; ++i) {
    Check(w.s_base.Insert(Tuple({int64_t{i}, rng.UniformInt(0, 999)})),
          "seed S");
    int64_t r2 = rng.UniformInt(0, rows - 1);
    live[i] = r2;
    Check(w.r_base.Insert(Tuple({int64_t{i}, r2})), "seed R");
  }
  int64_t next_key = rows;
  Schema r_schema = SchemaOf("R(r1, r2)");
  for (int b = 0; b < batches; ++b) {
    Delta d(r_schema);
    for (int a = 0; a < batch_atoms; ++a) {
      if (!live.empty() && rng.Bernoulli(0.4)) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Uniform(live.size())));
        Check(d.Add(Tuple({it->first, it->second}), -1), "delete atom");
        live.erase(it);
      } else {
        int64_t r1 = next_key++;
        int64_t r2 = rng.UniformInt(0, rows - 1);
        live[r1] = r2;
        Check(d.Add(Tuple({r1, r2}), 1), "insert atom");
      }
    }
    w.batches.push_back(std::move(d));
  }
  return w;
}

struct Stack {
  const Vdp* vdp;
  Annotation ann;  // empty = fully materialized
  LocalStore store;
  Vap vap;
  Iup iup;

  explicit Stack(const Vdp* v)
      : vdp(v),
        store(v, &ann, /*use_indexes=*/false),
        vap(v, &ann, &store),
        iup(v, &ann, &store, &vap) {}

  void Seed(const Workload& w) {
    Check(store.SetRepo("R'", w.r_base), "seed R'");
    Check(store.SetRepo("S'", w.s_base), "seed S'");
    Relation joined = Unwrap(
        OpJoin(w.r_base, w.s_base,
               Unwrap(ParsePredicate("r2 = s1"), "join cond")),
        "seed join");
    Relation t = Unwrap(OpProject(joined, {"r1", "s1", "s2"}), "seed T");
    Check(store.SetRepo("T", std::move(t)), "seed T repo");
  }

  double DriveMs(const Workload& w) {
    auto start = std::chrono::steady_clock::now();
    for (const Delta& batch : w.batches) {
      std::map<std::string, Delta> leaf_deltas;
      leaf_deltas.emplace("R", batch);
      TempStore temps;
      Unwrap(iup.RunKernel(leaf_deltas, &temps), "kernel");
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start).count();
  }

  /// The ad-hoc query mix: σ/π over the materialized view repo, the shape
  /// the QueryProcessor produces for exported-node queries.
  double QueryMs(int reps, const Expr::Ptr& pred) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      const Relation* t = Unwrap(store.Repo("T"), "repo T");
      Relation sel = Unwrap(OpSelect(*t, pred), "query select");
      Unwrap(OpProject(sel, {"r1", "s2"}), "query project");
    }
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start).count();
  }
};

EndToEndStats RunEndToEnd(const Vdp& vdp, int rows, int batches,
                          int batch_atoms, int query_reps, uint64_t seed) {
  EndToEndStats e;
  Workload w = MakeWorkload(rows, batches, batch_atoms, seed);
  Expr::Ptr query_pred =
      Unwrap(ParsePredicate("s2 < 500"), "query pred");

  // One full drive per mode for the export cross-check, then median-of-3
  // timing over fresh stacks (RunKernel mutates the store, so each timing
  // repetition reseeds).
  Stack row_check(&vdp);
  {
    columnar::ScopedColumnarMode scoped(false);
    row_check.Seed(w);
    row_check.DriveMs(w);
  }
  Stack col_check(&vdp);
  {
    columnar::ScopedColumnarMode scoped(true, /*min_rows=*/0);
    col_check.Seed(w);
    col_check.DriveMs(w);
  }
  e.exports_match = true;
  for (const char* node : {"R'", "S'", "T"}) {
    const Relation* a = Unwrap(row_check.store.Repo(node), "repo");
    const Relation* b = Unwrap(col_check.store.Repo(node), "repo");
    if (!a->EqualContents(*b)) e.exports_match = false;
  }

  auto time_mode = [&](bool columnar, double* iup_ms, double* query_ms) {
    std::vector<double> iup_samples, query_samples;
    for (int i = 0; i < kReps; ++i) {
      columnar::ScopedColumnarMode scoped(columnar, columnar ? 0 : -1);
      Stack stack(&vdp);
      stack.Seed(w);
      iup_samples.push_back(stack.DriveMs(w));
      query_samples.push_back(stack.QueryMs(query_reps, query_pred));
    }
    *iup_ms = MedianMs(std::move(iup_samples));
    *query_ms = MedianMs(std::move(query_samples));
  };
  time_mode(false, &e.row_iup_ms, &e.row_query_ms);
  time_mode(true, &e.columnar_iup_ms, &e.columnar_query_ms);
  e.iup_speedup = e.row_iup_ms / e.columnar_iup_ms;
  e.query_speedup = e.row_query_ms / e.columnar_query_ms;
  return e;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string KernelJson(const KernelStats& k) {
  return "{\"row_ms\": " + Num(k.row_ms) +
         ", \"columnar_ms\": " + Num(k.columnar_ms) +
         ", \"row_rows_per_sec\": " + Num(k.row_rows_per_sec) +
         ", \"columnar_rows_per_sec\": " + Num(k.columnar_rows_per_sec) +
         ", \"speedup\": " + Num(k.speedup) +
         ", \"exports_match\": " + (k.exports_match ? "true" : "false") + "}";
}

std::string EndToEndJson(const EndToEndStats& e) {
  return "{\"row_iup_ms\": " + Num(e.row_iup_ms) +
         ", \"columnar_iup_ms\": " + Num(e.columnar_iup_ms) +
         ", \"iup_speedup\": " + Num(e.iup_speedup) +
         ", \"row_query_ms\": " + Num(e.row_query_ms) +
         ", \"columnar_query_ms\": " + Num(e.columnar_query_ms) +
         ", \"query_speedup\": " + Num(e.query_speedup) +
         ", \"exports_match\": " + (e.exports_match ? "true" : "false") + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e15_columnar_exec\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"reps\": " << kReps << ",\n  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"rows\": " << r.rows << ", \"batches\": " << r.batches
        << ",\n     \"kernels\": {";
    for (size_t k = 0; k < r.kernels.size(); ++k) {
      out << "\n       \"" << r.kernels[k].first
          << "\": " << KernelJson(r.kernels[k].second)
          << (k + 1 < r.kernels.size() ? "," : "");
    }
    out << "},\n     \"end_to_end\": " << EndToEndJson(r.end_to_end) << "}"
        << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed
/// or any row/columnar pair diverged.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e15_columnar_exec\"", "\"scales\"", "\"kernels\"",
        "\"select\"", "\"project\"", "\"join\"", "\"delta_join\"",
        "\"end_to_end\"", "\"row_rows_per_sec\"",
        "\"columnar_rows_per_sec\"", "\"speedup\"", "\"iup_speedup\"",
        "\"query_speedup\"", "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: columnar and row runs diverged "
                 "(exports_match false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr7.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  Vdp vdp = Unwrap(BuildVdp(), "vdp");
  const int batch_atoms = smoke ? 32 : 64;
  struct ScaleSpec {
    int rows;
    int batches;
    int query_reps;
  };
  std::vector<ScaleSpec> specs =
      smoke ? std::vector<ScaleSpec>{{500, 10, 5}}
            : std::vector<ScaleSpec>{
                  {1000, 60, 50}, {10000, 30, 20}, {100000, 10, 5}};

  std::vector<ScaleReport> scales;
  for (const auto& spec : specs) {
    ScaleReport r;
    r.rows = spec.rows;
    r.batches = spec.batches;
    r.kernels = RunKernels(spec.rows, /*seed=*/15);
    r.end_to_end = RunEndToEnd(vdp, spec.rows, spec.batches, batch_atoms,
                               spec.query_reps, /*seed=*/15);
    for (const auto& [name, k] : r.kernels) {
      std::fprintf(stderr,
                   "rows=%d kernel=%s row=%.2fms columnar=%.2fms "
                   "speedup=%.2fx match=%s\n",
                   r.rows, name.c_str(), k.row_ms, k.columnar_ms, k.speedup,
                   k.exports_match ? "yes" : "NO");
    }
    std::fprintf(stderr,
                 "rows=%d end_to_end iup=%.1f/%.1fms (%.2fx) "
                 "query=%.1f/%.1fms (%.2fx) match=%s\n",
                 r.rows, r.end_to_end.row_iup_ms,
                 r.end_to_end.columnar_iup_ms, r.end_to_end.iup_speedup,
                 r.end_to_end.row_query_ms, r.end_to_end.columnar_query_ms,
                 r.end_to_end.query_speedup,
                 r.end_to_end.exports_match ? "yes" : "NO");
    scales.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
