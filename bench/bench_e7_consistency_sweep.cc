// Experiment E7 (Theorem 7.1): consistency under randomized schedules.
//
// Sweeps random commit/query interleavings, delay configurations, and
// annotations; every mediator trace must pass the independent consistency
// checker. This is the paper's central correctness theorem exercised as an
// experiment rather than a proof.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mediator/consistency.h"

namespace squirrel {
namespace bench {
namespace {

struct SweepResult {
  size_t traces = 0;
  size_t entries = 0;
  size_t relations_compared = 0;
  size_t violations = 0;
};

SweepResult RunSweep(int ann_kind, int runs, uint64_t seed_base) {
  SweepResult out;
  Vdp vdp_proto = Unwrap(BuildFigure1Vdp(), "vdp");
  for (int run = 0; run < runs; ++run) {
    Rng rng(seed_base + run * 9176);
    Annotation ann;
    if (ann_kind == 1) ann = AnnotationExample22(vdp_proto);
    if (ann_kind == 2) ann = AnnotationExample23(vdp_proto);

    MediatorOptions options;
    options.update_period = rng.Bernoulli(0.5) ? 0.0 : 1 + rng.UniformDouble() * 3;
    options.u_proc_delay = rng.UniformDouble() * 0.2;
    Fig1System sys = MakeFig1System(ann, options,
                                    /*comm=*/0.2 + rng.UniformDouble(),
                                    /*q_proc=*/0.1 + rng.UniformDouble() * 0.4,
                                    /*announce=*/rng.Bernoulli(0.5)
                                        ? 0.0
                                        : rng.UniformDouble() * 2);
    sys.Seed(100, 16);
    Check(sys.mediator->Start(), "start");

    Time now = 1.0;
    for (int step = 0; step < 30; ++step) {
      double dice = rng.UniformDouble();
      if (dice < 0.4) {
        sys.InsertR(now);
      } else if (dice < 0.55) {
        sys.DeleteR(now);
      } else if (dice < 0.7) {
        sys.InsertS(now);
      } else {
        ViewQuery q = rng.Bernoulli(0.5)
                          ? ViewQuery{"T", {"r1", "s1"}, nullptr}
                          : ViewQuery{"T", {"r1", "r3"}, nullptr};
        sys.scheduler->At(now, [&sys, q]() {
          sys.mediator->SubmitQuery(q, [](Result<ViewAnswer> ans) {
            Check(ans.status(), "query");
          });
        });
      }
      now += 5.0 + rng.UniformDouble() * 2;
      AdvanceTo(sys.scheduler.get(), now);
    }
    AdvanceTo(sys.scheduler.get(), now + 100.0);

    ConsistencyChecker checker(&sys.mediator->vdp(),
                               &sys.mediator->annotation(),
                               {sys.db1.get(), sys.db2.get()});
    ConsistencyReport report =
        Unwrap(checker.Check(sys.mediator->trace()), "check");
    ++out.traces;
    out.entries += report.entries_checked;
    out.relations_compared += report.relations_compared;
    out.violations += report.violations.size();
  }
  return out;
}

void E7Table() {
  Table table({"annotation", "traces", "txns_checked", "relations_compared",
               "violations"});
  const char* kLabels[] = {"fully materialized", "virtual R' (Ex 2.2)",
                           "hybrid (Ex 2.3)"};
  for (int ann = 0; ann < 3; ++ann) {
    SweepResult r = RunSweep(ann, /*runs=*/12, /*seed_base=*/1000 + ann);
    table.AddRow({kLabels[ann], Table::Int(r.traces), Table::Int(r.entries),
                  Table::Int(r.relations_compared),
                  Table::Int(r.violations)});
  }
  table.Print(
      "E7 (Theorem 7.1): randomized-schedule consistency sweep (paper "
      "claim: violations = 0 everywhere)");
}

void BM_E7_FullTraceValidation(benchmark::State& state) {
  for (auto _ : state) {
    SweepResult r = RunSweep(static_cast<int>(state.range(0)), 1,
                             42 + state.iterations());
    if (r.violations != 0) {
      state.SkipWithError("consistency violation!");
      return;
    }
    benchmark::DoNotOptimize(r.entries);
  }
}
BENCHMARK(BM_E7_FullTraceValidation)->Arg(0)->Arg(2);

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E7Table();
  return 0;
}
