// Experiment E17: what sharding the mediator costs — single vs two-shard vs
// three-tier deployments of the SAME Figure 1 scenario (DESIGN.md §14).
//
// One workload per scale: seeded R/S populations, a stream of R/S commits
// with periodic root queries (Example 2.3's hybrid annotation, so queries
// and update transactions actually poll), and — in the sharded deployments —
// one child-shard crash+recover in a quiet window mid-run. Each topology is
// built through the real ShardPlan/ExportAnnouncer composition path and runs
// the identical op schedule inside its own deterministic scheduler. Reports
// per topology:
//
//   - wall time to drain the whole schedule, median-of-3 over fresh
//     deployments, and sustained committed atoms/sec derived from it
//   - root query latency p50/p99 in virtual time (poll-bound under the
//     hybrid annotation; sharded roots poll across the mediator-to-mediator
//     link, so the mirror hop is visible here)
//   - resync bytes on child restart: the encoded size of every mirror
//     relation the parent re-pulls after OnChildRecovered (0 for single)
//   - commits mirrored through ExportAnnouncers (0 for single)
//
// Self-validation (exports_match): after draining, the root of every
// topology answers the same full-T query; all three renderings must be
// byte-identical. A sharded deployment that diverges from the single-
// mediator oracle fails its own driver.
//
// Standalone driver in the E13-E16 mold: emits a JSON report (default
// BENCH_pr9.json) that bench/run_bench.sh commits as the PR baseline and
// that the SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e17_sharded_topology [--smoke] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mediator/durability/log_device.h"
#include "mediator/durability/serialize.h"
#include "mediator/export_announcer.h"
#include "mediator/shard_plan.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace bench {
namespace {

constexpr int kReps = 3;  // median-of-3 wall times

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

enum class Topo { kSingle, kTwoShard, kThreeTier };

const char* TopoName(Topo t) {
  switch (t) {
    case Topo::kSingle: return "single";
    case Topo::kTwoShard: return "two_shard";
    default: return "three_tier";
  }
}

std::vector<ShardSpec> SpecsFor(Topo t) {
  switch (t) {
    case Topo::kSingle:
      return {{"top", "", {"R'", "S'", "T"}}};
    case Topo::kTwoShard:
      return {{"shardA", "top", {"S'"}}, {"top", "", {"R'", "T"}}};
    default:  // S' computed two hops below the query root
      return {{"shardA", "mid", {"S'"}},
              {"mid", "top", {"R'", "T"}},
              {"top", "", {}}};
  }
}

struct WorkloadSpec {
  int r_rows = 0;  // initial R population (60% passing the r4 = 100 filter)
  int s_rows = 0;  // initial S population (all passing s3 < 50)
  int ops = 0;     // committed single-atom transactions after the seed
};

/// One committed atom of the shared schedule.
struct Op {
  Time when = 0;
  int db = 0;  // 0 = DB1 (R), 1 = DB2 (S)
  bool insert = true;
  Tuple tuple;
};

/// The seed populations and op schedule, generated ONCE per scale so every
/// topology commits byte-identical data on an identical timeline.
struct Workload {
  WorkloadSpec spec;
  std::vector<Tuple> r_seed, s_seed;
  std::vector<Op> ops;
  std::vector<Time> query_times;
  Time crash_at = 0, recover_at = 0;  // quiet-window child crash (sharded)
  Time t_end = 0;
};

Workload MakeWorkload(const WorkloadSpec& spec) {
  Workload w;
  w.spec = spec;
  Rng rng(20260813 + static_cast<uint64_t>(spec.ops));
  std::vector<Tuple> live_r, live_s;
  int64_t next_r_key = 0;
  for (int i = 0; i < spec.r_rows; ++i) {
    int64_t join = rng.UniformInt(0, std::max(1, spec.s_rows - 1)) * 100;
    int64_t r4 = rng.Bernoulli(0.6) ? 100 : 7;
    Tuple t({next_r_key++, join, rng.UniformInt(0, 1000), r4});
    if (r4 == 100) live_r.push_back(t);
    w.r_seed.push_back(std::move(t));
  }
  for (int i = 0; i < spec.s_rows; ++i) {
    Tuple t({int64_t{i} * 100, rng.UniformInt(0, 50), rng.UniformInt(0, 49)});
    live_s.push_back(t);
    w.s_seed.push_back(std::move(t));
  }
  // Ops every 1.5 time units with a quiet window after the midpoint: the
  // bench runs ideal links (no injector, no ARQ), so the child crash must
  // not land while an announcement or poll is in flight.
  Time t = 1.0;
  const int half = spec.ops / 2;
  for (int i = 0; i < spec.ops; ++i) {
    if (i == half) {
      w.crash_at = t + 3.0;  // last pre-gap txn drains by ~t + 2
      w.recover_at = w.crash_at + 2.0;
      t = w.crash_at + 3.0;
    }
    Op op;
    op.when = t;
    double dice = rng.UniformDouble();
    if (dice < 0.5) {  // R insert, always passing the filter
      int64_t join = live_s[rng.Uniform(live_s.size())].at(0).AsInt();
      op.db = 0;
      op.tuple = Tuple({next_r_key++, join, rng.UniformInt(0, 1000),
                        int64_t{100}});
      live_r.push_back(op.tuple);
    } else if (dice < 0.7 && !live_r.empty()) {  // R delete
      size_t idx = rng.Uniform(live_r.size());
      op.db = 0;
      op.insert = false;
      op.tuple = live_r[idx];
      live_r.erase(live_r.begin() + static_cast<ptrdiff_t>(idx));
    } else {  // S insert, new join key, always passing s3 < 50
      op.db = 1;
      op.tuple = Tuple({int64_t{100000} +
                            static_cast<int64_t>(live_s.size()) * 100,
                        rng.UniformInt(0, 50), rng.UniformInt(0, 49)});
      live_s.push_back(op.tuple);
    }
    w.ops.push_back(op);
    if (i % 8 == 3 && (w.crash_at == 0 || op.when + 0.7 < w.crash_at ||
                       op.when + 0.7 > w.recover_at + 1.0)) {
      w.query_times.push_back(op.when + 0.7);
    }
    t += 1.5;
  }
  w.t_end = t + 30.0;  // drain
  return w;
}

/// One built topology: shards children-first (root last), every mediator
/// durable on its own MemLogDevice, mirrors wired through ExportAnnouncers.
struct Deployment {
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<SourceDb> db1, db2;
  std::vector<std::unique_ptr<MemLogDevice>> devs;
  std::vector<std::unique_ptr<Mediator>> meds;
  std::vector<std::unique_ptr<ExportAnnouncer>> exporters;
  std::vector<std::string> exporter_names;
  Mediator* root = nullptr;
  Mediator* bottom = nullptr;              // crash target (non-root lowest)
  ExportAnnouncer* bottom_exporter = nullptr;
};

std::unique_ptr<Deployment> MakeDeployment(Topo topo, const Workload& w) {
  auto d = std::make_unique<Deployment>();
  d->scheduler = std::make_unique<Scheduler>();
  d->db1 = std::make_unique<SourceDb>("DB1");
  d->db2 = std::make_unique<SourceDb>("DB2");
  Check(d->db1->AddRelation("R", SchemaOf("R(r1, r2, r3, r4) key(r1)")),
        "declare R");
  Check(d->db2->AddRelation("S", SchemaOf("S(s1, s2, s3) key(s1)")),
        "declare S");
  {
    MultiDelta mr;
    Delta* dr = mr.Mutable("R", SchemaOf("R(r1, r2, r3, r4) key(r1)"));
    for (const Tuple& t : w.r_seed) Check(dr->AddInsert(t), "seed R");
    Check(d->db1->Commit(0, mr), "commit R seed");
    MultiDelta ms;
    Delta* ds = ms.Mutable("S", SchemaOf("S(s1, s2, s3) key(s1)"));
    for (const Tuple& t : w.s_seed) Check(ds->AddInsert(t), "seed S");
    Check(d->db2->Commit(0, ms), "commit S seed");
  }

  Vdp base = Unwrap(BuildFigure1Vdp(), "figure 1 vdp");
  Annotation ann = AnnotationExample23(base);  // the hybrid spectrum
  ShardPlan plan =
      Unwrap(ShardPlan::Build(base, SpecsFor(topo)), "shard plan");
  for (const Shard& shard : plan.shards()) {
    auto built = Unwrap(plan.BuildVdp(shard, ann), "shard vdp");
    std::vector<SourceSetup> setups;
    std::set<std::string> wired;
    for (const auto& name : built.first.TopoOrder()) {
      const VdpNode* n = built.first.Find(name);
      if (!n->is_leaf || !wired.insert(n->source_db).second) continue;
      SourceSetup s;
      if (n->source_db == "DB1") {
        s.db = d->db1.get();
      } else if (n->source_db == "DB2") {
        s.db = d->db2.get();
      } else {
        for (size_t i = 0; i < d->exporters.size(); ++i) {
          if (d->exporter_names[i] == n->source_db) {
            s.db = d->exporters[i]->mirror();
          }
        }
        Check(s.db != nullptr ? Status::OK()
                              : Status::Internal("no mirror " + n->source_db),
              "mirror lookup");
      }
      s.comm_delay = 0.5;
      s.q_proc_delay = 0.2;
      s.announce_period = 0.0;  // announce on every commit
      setups.push_back(s);
    }
    MediatorOptions options;
    options.record_trace = false;   // perf run, not a consistency check
    options.snapshot_repos = false;
    d->devs.push_back(std::make_unique<MemLogDevice>());
    options.durability.device = d->devs.back().get();
    options.durability.wal = true;
    options.durability.checkpoint_every = 64;
    d->meds.push_back(Unwrap(Mediator::Create(built.first, built.second,
                                              setups, d->scheduler.get(),
                                              options),
                             "create mediator"));
    Check(d->meds.back()->Start(), "start mediator");
    if (!shard.is_root()) {
      d->exporters.push_back(
          Unwrap(ExportAnnouncer::Create(d->meds.back().get(), shard.name,
                                         shard.exports, d->scheduler.get()),
                 "export announcer"));
      d->exporter_names.push_back(shard.name);
    }
  }
  d->root = d->meds.back().get();
  if (d->meds.size() > 1) {
    d->bottom = d->meds.front().get();
    d->bottom_exporter = d->exporters.front().get();
  }
  return d;
}

std::string RowsOf(const Relation& rel) {
  std::string out;
  for (const auto& [t, n] : rel.SortedRows()) {
    out += t.ToString();
    if (n > 1) out += "x" + std::to_string(n);
    out += " ";
  }
  return out;
}

struct TopoMetrics {
  double wall_ms = 0;       // median-of-3 drain time
  double atoms_per_sec = 0;
  double query_p50 = 0, query_p99 = 0;  // virtual-time latency
  uint64_t polls = 0;
  uint64_t resync_bytes = 0;
  uint64_t commits_mirrored = 0;
  uint64_t shards = 1;
  std::string final_rows;  // for the exports_match gate
};

TopoMetrics RunTopo(Topo topo, const Workload& w) {
  TopoMetrics m;
  std::vector<double> wall_samples;
  for (int rep = 0; rep < kReps; ++rep) {
    auto d = MakeDeployment(topo, w);
    Scheduler* sched = d->scheduler.get();
    for (const Op& op : w.ops) {
      SourceDb* db = op.db == 0 ? d->db1.get() : d->db2.get();
      Schema schema = op.db == 0 ? SchemaOf("R(r1, r2, r3, r4) key(r1)")
                                 : SchemaOf("S(s1, s2, s3) key(s1)");
      const char* rel = op.db == 0 ? "R" : "S";
      sched->At(op.when, [db, sched, op, schema, rel]() {
        MultiDelta md;
        Delta* delta = md.Mutable(rel, schema);
        Check(op.insert ? delta->AddInsert(op.tuple)
                        : delta->AddDelete(op.tuple),
              "op atom");
        Check(db->Commit(sched->Now(), md), "op commit");
      });
    }
    std::vector<double> latencies;
    for (Time qt : w.query_times) {
      Mediator* root = d->root;
      sched->At(qt, [root, sched, &latencies]() {
        Time submitted = sched->Now();
        root->SubmitQuery(ViewQuery{"T", {}, nullptr},
                          [sched, submitted, &latencies](Result<ViewAnswer> a) {
                            Check(a.status(), "mid-run query");
                            latencies.push_back(sched->Now() - submitted);
                          });
      });
    }
    uint64_t resync_bytes = 0;
    if (d->bottom != nullptr) {
      Mediator* bottom = d->bottom;
      sched->At(w.crash_at, [bottom]() { bottom->Crash(); });
      ExportAnnouncer* exp = d->bottom_exporter;
      sched->At(w.recover_at, [bottom, exp, &resync_bytes]() {
        Check(bottom->Recover(), "child recover");
        // What the parent's epoch-bump resync will re-pull: the full
        // current extent of every mirrored export relation.
        SourceDb* mirror = exp->mirror();
        for (const std::string& rel : mirror->RelationNames()) {
          BinaryWriter bw;
          EncodeRelation(&bw, *Unwrap(mirror->Current(rel), "mirror rel"));
          resync_bytes += bw.bytes().size();
        }
        Check(exp->OnChildRecovered(), "re-export");
      });
    }
    auto start = std::chrono::steady_clock::now();
    sched->RunUntil(w.t_end);
    auto end = std::chrono::steady_clock::now();
    wall_samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());

    if (rep + 1 == kReps) {
      std::string rows;
      d->root->SubmitQuery(ViewQuery{"T", {}, nullptr},
                           [&rows](Result<ViewAnswer> a) {
                             Check(a.status(), "final query");
                             rows = RowsOf(a->data);
                           });
      sched->RunUntil(w.t_end + 50.0);
      Check(!rows.empty() ? Status::OK()
                          : Status::Internal("final query never answered"),
            "final query drained");
      m.final_rows = std::move(rows);
      std::sort(latencies.begin(), latencies.end());
      m.query_p50 = latencies[latencies.size() / 2];
      m.query_p99 = latencies[(latencies.size() * 99) / 100];
      for (const auto& med : d->meds) m.polls += med->stats().polls;
      for (const auto& exp : d->exporters) {
        m.commits_mirrored += exp->commits_mirrored();
      }
      m.resync_bytes = resync_bytes;
      m.shards = d->meds.size();
    }
  }
  m.wall_ms = MedianMs(std::move(wall_samples));
  m.atoms_per_sec =
      static_cast<double>(w.ops.size()) / (m.wall_ms / 1000.0);
  return m;
}

struct ScaleReport {
  WorkloadSpec spec;
  TopoMetrics single, two_shard, three_tier;
  double two_shard_slowdown = 0;   // wall vs single
  double three_tier_slowdown = 0;
  bool exports_match = false;
};

ScaleReport RunScale(const WorkloadSpec& spec) {
  Workload w = MakeWorkload(spec);
  ScaleReport r;
  r.spec = spec;
  r.single = RunTopo(Topo::kSingle, w);
  r.two_shard = RunTopo(Topo::kTwoShard, w);
  r.three_tier = RunTopo(Topo::kThreeTier, w);
  r.two_shard_slowdown = r.two_shard.wall_ms / r.single.wall_ms;
  r.three_tier_slowdown = r.three_tier.wall_ms / r.single.wall_ms;
  r.exports_match = r.two_shard.final_rows == r.single.final_rows &&
                    r.three_tier.final_rows == r.single.final_rows &&
                    !r.single.final_rows.empty();
  return r;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string TopoJson(const TopoMetrics& m) {
  return "{\"wall_ms\": " + Num(m.wall_ms) +
         ", \"atoms_per_sec\": " + Num(m.atoms_per_sec) +
         ", \"query_p50\": " + Num(m.query_p50) +
         ", \"query_p99\": " + Num(m.query_p99) +
         ", \"polls\": " + std::to_string(m.polls) +
         ", \"resync_bytes\": " + std::to_string(m.resync_bytes) +
         ", \"commits_mirrored\": " + std::to_string(m.commits_mirrored) +
         ", \"shards\": " + std::to_string(m.shards) + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e17_sharded_topology\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"reps\": " << kReps << ",\n  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"r_rows\": " << r.spec.r_rows
        << ", \"s_rows\": " << r.spec.s_rows << ", \"ops\": " << r.spec.ops
        << ",\n     \"single\": " << TopoJson(r.single)
        << ",\n     \"two_shard\": " << TopoJson(r.two_shard)
        << ",\n     \"three_tier\": " << TopoJson(r.three_tier)
        << ",\n     \"two_shard_slowdown\": " << Num(r.two_shard_slowdown)
        << ", \"three_tier_slowdown\": " << Num(r.three_tier_slowdown)
        << ", \"exports_match\": " << (r.exports_match ? "true" : "false")
        << "}" << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed or
/// any sharded deployment's exports diverged from the single-mediator run.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e17_sharded_topology\"", "\"scales\"", "\"single\"",
        "\"two_shard\"", "\"three_tier\"", "\"atoms_per_sec\"",
        "\"query_p50\"", "\"query_p99\"", "\"resync_bytes\"",
        "\"commits_mirrored\"", "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: a sharded deployment diverged from the single-"
                 "mediator oracle (exports_match false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<WorkloadSpec> specs =
      smoke ? std::vector<WorkloadSpec>{{60, 30, 24}}
            : std::vector<WorkloadSpec>{
                  {500, 250, 200}, {2000, 1000, 400}, {8000, 4000, 800}};

  std::vector<ScaleReport> scales;
  for (const WorkloadSpec& spec : specs) {
    ScaleReport r = RunScale(spec);
    std::fprintf(stderr,
                 "r=%d s=%d ops=%d wall=%.1f/%.1f/%.1fms (%.2fx/%.2fx) "
                 "q_p50=%.2f/%.2f/%.2f resync=%llu/%lluB match=%s\n",
                 spec.r_rows, spec.s_rows, spec.ops, r.single.wall_ms,
                 r.two_shard.wall_ms, r.three_tier.wall_ms,
                 r.two_shard_slowdown, r.three_tier_slowdown,
                 r.single.query_p50, r.two_shard.query_p50,
                 r.three_tier.query_p50,
                 static_cast<unsigned long long>(r.two_shard.resync_bytes),
                 static_cast<unsigned long long>(r.three_tier.resync_bytes),
                 r.exports_match ? "yes" : "NO");
    scales.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
