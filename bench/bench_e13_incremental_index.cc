// Experiment E13: incremental-index maintenance on the IUP hot path.
//
// Measures Iup::RunKernel throughput over a fully materialized
// R' ⋈_{r2=s1} S' view while a stream of batched R updates flows through,
// with the LocalStore's persistent join indexes enabled vs disabled. The
// unindexed path re-hashes the sibling repository on every firing, so its
// per-batch cost grows with |S'|; the indexed path probes the maintained
// index per delta atom. Both runs process byte-identical batch sequences
// and must end with byte-identical repositories (exports_match).
//
// Unlike the E1-E12 microbenchmarks this is a standalone driver: it emits
// a JSON report (default BENCH_pr4.json) that bench/run_bench.sh commits as
// the PR's baseline and that the SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e13_incremental_index [--smoke] [--out=PATH]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/vap.h"
#include "relational/operators.h"
#include "relational/parser.h"
#include "vdp/annotation.h"
#include "vdp/builder.h"

namespace squirrel {
namespace bench {
namespace {

struct RunStats {
  double total_ms = 0;
  double mean_batch_ms = 0;
  double max_batch_ms = 0;
  double atoms_per_sec = 0;
  double batches_per_sec = 0;
};

struct ScaleReport {
  int rows = 0;
  int batches = 0;
  RunStats unindexed;
  RunStats indexed;
  double speedup = 0;
  bool exports_match = false;
};

Result<Vdp> BuildVdp() {
  VdpBuilder b;
  b.Leaf("R", "DB1", "R", "R(r1, r2) key(r1)");
  b.Leaf("S", "DB2", "S", "S(s1, s2) key(s1)");
  b.LeafParent("R'", "R", {"r1", "r2"}, "");
  b.LeafParent("S'", "S", {"s1", "s2"}, "");
  b.Spj("T", {{"R'", {"r1", "r2"}, ""}, {"S'", {"s1", "s2"}, ""}},
        {"r2 = s1"}, {"r1", "s1", "s2"}, "", /*exported=*/true);
  return b.Build();
}

/// Pre-generated workload: identical base data and batch sequence for the
/// indexed and unindexed runs.
struct Workload {
  Relation r_base{SchemaOf("R(r1, r2)"), Semantics::kBag};
  Relation s_base{SchemaOf("S(s1, s2)"), Semantics::kBag};
  std::vector<Delta> batches;
};

Workload MakeWorkload(int rows, int batches, int batch_atoms, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  std::map<int64_t, int64_t> live;  // r1 -> r2 of live R rows
  for (int i = 0; i < rows; ++i) {
    int64_t s1 = i;
    Check(w.s_base.Insert(Tuple({s1, rng.UniformInt(0, 999)})), "seed S");
    int64_t r1 = i;
    int64_t r2 = rng.UniformInt(0, rows - 1);
    live[r1] = r2;
    Check(w.r_base.Insert(Tuple({r1, r2})), "seed R");
  }
  int64_t next_key = rows;
  Schema r_schema = SchemaOf("R(r1, r2)");
  for (int b = 0; b < batches; ++b) {
    Delta d(r_schema);
    for (int a = 0; a < batch_atoms; ++a) {
      if (!live.empty() && rng.Bernoulli(0.4)) {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Uniform(live.size())));
        Check(d.Add(Tuple({it->first, it->second}), -1), "delete atom");
        live.erase(it);
      } else {
        int64_t r1 = next_key++;
        int64_t r2 = rng.UniformInt(0, rows - 1);
        live[r1] = r2;
        Check(d.Add(Tuple({r1, r2}), 1), "insert atom");
      }
    }
    w.batches.push_back(std::move(d));
  }
  return w;
}

/// One mediator stack (store + VAP + IUP) seeded from the workload's base
/// data; everything is materialized so RunKernel needs no temporaries.
struct Stack {
  const Vdp* vdp;
  Annotation ann;  // empty = fully materialized
  LocalStore store;
  Vap vap;
  Iup iup;

  Stack(const Vdp* v, bool use_indexes)
      : vdp(v),
        store(v, &ann, use_indexes),
        vap(v, &ann, &store),
        iup(v, &ann, &store, &vap) {}

  void Seed(const Workload& w) {
    Check(store.SetRepo("R'", w.r_base), "seed R'");
    Check(store.SetRepo("S'", w.s_base), "seed S'");
    Relation joined = Unwrap(
        OpJoin(w.r_base, w.s_base,
               Unwrap(ParsePredicate("r2 = s1"), "join cond")),
        "seed join");
    Relation t = Unwrap(OpProject(joined, {"r1", "s1", "s2"}), "seed T");
    Check(store.SetRepo("T", std::move(t)), "seed T repo");
  }

  RunStats Drive(const Workload& w, int batch_atoms) {
    RunStats stats;
    for (const Delta& batch : w.batches) {
      std::map<std::string, Delta> leaf_deltas;
      leaf_deltas.emplace("R", batch);
      TempStore temps;  // fully materialized: nothing to populate
      auto start = std::chrono::steady_clock::now();
      Unwrap(iup.RunKernel(leaf_deltas, &temps), "kernel");
      auto end = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(end - start)
                      .count();
      stats.total_ms += ms;
      if (ms > stats.max_batch_ms) stats.max_batch_ms = ms;
    }
    const double n = static_cast<double>(w.batches.size());
    stats.mean_batch_ms = stats.total_ms / n;
    stats.batches_per_sec = n / (stats.total_ms / 1000.0);
    stats.atoms_per_sec = n * batch_atoms / (stats.total_ms / 1000.0);
    return stats;
  }
};

ScaleReport RunScale(const Vdp& vdp, int rows, int batches, int batch_atoms,
                     uint64_t seed) {
  ScaleReport report;
  report.rows = rows;
  report.batches = batches;
  Workload w = MakeWorkload(rows, batches, batch_atoms, seed);

  Stack plain(&vdp, /*use_indexes=*/false);
  plain.Seed(w);
  report.unindexed = plain.Drive(w, batch_atoms);

  Stack indexed(&vdp, /*use_indexes=*/true);
  indexed.Seed(w);
  report.indexed = indexed.Drive(w, batch_atoms);

  report.speedup = report.unindexed.total_ms / report.indexed.total_ms;
  report.exports_match = true;
  for (const char* node : {"R'", "S'", "T"}) {
    const Relation* a = Unwrap(plain.store.Repo(node), "repo");
    const Relation* b = Unwrap(indexed.store.Repo(node), "repo");
    if (!a->EqualContents(*b)) report.exports_match = false;
  }
  return report;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string RunJson(const RunStats& s) {
  return "{\"total_ms\": " + Num(s.total_ms) +
         ", \"mean_batch_ms\": " + Num(s.mean_batch_ms) +
         ", \"max_batch_ms\": " + Num(s.max_batch_ms) +
         ", \"atoms_per_sec\": " + Num(s.atoms_per_sec) +
         ", \"batches_per_sec\": " + Num(s.batches_per_sec) + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke,
                       int batch_atoms) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e13_incremental_index\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"batch_atoms\": " << batch_atoms << ",\n  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"rows\": " << r.rows << ", \"batches\": " << r.batches
        << ",\n     \"unindexed\": " << RunJson(r.unindexed)
        << ",\n     \"indexed\": " << RunJson(r.indexed)
        << ",\n     \"speedup\": " << Num(r.speedup)
        << ", \"exports_match\": " << (r.exports_match ? "true" : "false")
        << "}" << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed
/// or the indexed/unindexed runs diverged.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e13_incremental_index\"", "\"scales\"",
        "\"unindexed\"", "\"indexed\"", "\"atoms_per_sec\"",
        "\"mean_batch_ms\"", "\"max_batch_ms\"", "\"speedup\"",
        "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: indexed and unindexed runs diverged "
                 "(exports_match false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr4.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  Vdp vdp = Unwrap(BuildVdp(), "vdp");
  const int batch_atoms = smoke ? 32 : 64;
  struct ScaleSpec {
    int rows;
    int batches;
  };
  std::vector<ScaleSpec> specs =
      smoke ? std::vector<ScaleSpec>{{500, 20}}
            : std::vector<ScaleSpec>{{1000, 200}, {10000, 120}, {100000, 40}};

  std::vector<ScaleReport> scales;
  for (const auto& spec : specs) {
    ScaleReport r = RunScale(vdp, spec.rows, spec.batches, batch_atoms,
                             /*seed=*/13);
    std::fprintf(stderr,
                 "rows=%d batches=%d unindexed=%.1fms indexed=%.1fms "
                 "speedup=%.2fx match=%s\n",
                 r.rows, r.batches, r.unindexed.total_ms, r.indexed.total_ms,
                 r.speedup, r.exports_match ? "yes" : "NO");
    scales.push_back(r);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke, batch_atoms);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
