// Experiment E3 (Example 2.3): hybrid views and key-based construction.
//
// Claims reproduced:
//  - queries touching only the materialized attributes {r1, s1} are not
//    affected by r3/s2 being virtual (no polls, local-store latency);
//  - queries touching virtual attributes construct a temporary relation;
//  - the KEY-BASED construction (π_{r1,s1}T ⋈_{r1} R') beats the child-
//    based one when the sibling S' is fully virtual, because it avoids
//    polling DB2 entirely.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

namespace squirrel {
namespace bench {
namespace {

Fig1System MakeHybrid(VapStrategy strategy, int rows, int s_rows = 64) {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  MediatorOptions options;
  options.strategy = strategy;
  Fig1System sys = MakeFig1System(AnnotationExample23(vdp), options);
  sys.Seed(rows, s_rows);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  return sys;
}

double RunQuery(Fig1System* sys, const ViewQuery& q, uint64_t* polls,
                uint64_t* tuples) {
  auto begin = std::chrono::steady_clock::now();
  sys->mediator->SubmitQuery(q, [&](Result<ViewAnswer> ans) {
    Check(ans.status(), "query");
    *polls += ans->polls;
  });
  uint64_t before = sys->mediator->stats().polled_tuples;
  Drain(sys->scheduler.get());
  *tuples += sys->mediator->stats().polled_tuples - before;
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
             .count() /
         1e6;
}

void E3ClaimTable() {
  const int rows = 4000;
  const int kQueries = 20;
  Table table({"query", "strategy", "polls/query", "tuples_moved/query",
               "wall_ms/query"});
  struct Case {
    const char* label;
    ViewQuery query;
    VapStrategy strategy;
    const char* strategy_name;
  };
  ViewQuery mat_query{"T", {"r1", "s1"}, nullptr};
  ViewQuery virt_query{
      "T",
      {"r3", "s1"},
      Unwrap(ParsePredicate("r3 < 100"), "pred")};
  std::vector<Case> cases = {
      {"pi[r1,s1](T)  (materialized)", mat_query, VapStrategy::kChildBased,
       "n/a"},
      {"pi[r3,s1](sel[r3<100](T))", virt_query, VapStrategy::kChildBased,
       "child-based"},
      {"pi[r3,s1](sel[r3<100](T))", virt_query, VapStrategy::kKeyBased,
       "key-based"},
      {"pi[r3,s1](sel[r3<100](T))", virt_query, VapStrategy::kAuto, "auto"},
  };
  // A large S makes the contrast visible: the child-based construction must
  // ship all of S' from DB2, the key-based one skips DB2 entirely.
  for (const auto& c : cases) {
    Fig1System sys = MakeHybrid(c.strategy, rows, /*s_rows=*/3000);
    uint64_t polls = 0, tuples = 0;
    double total_ms = 0;
    for (int i = 0; i < kQueries; ++i) {
      total_ms += RunQuery(&sys, c.query, &polls, &tuples);
    }
    table.AddRow({c.label, c.strategy_name,
                  Table::Num(double(polls) / kQueries, 2),
                  Table::Num(double(tuples) / kQueries, 1),
                  Table::Num(total_ms / kQueries, 3)});
  }
  table.Print(
      "E3 (Example 2.3): hybrid T[r1^m,r3^v,s1^m,s2^v] — materialized-attr "
      "queries stay local; key-based temp construction avoids polling the "
      "virtual sibling S'");
}

void BM_E3_MaterializedAttrQuery(benchmark::State& state) {
  Fig1System sys = MakeHybrid(VapStrategy::kAuto,
                              static_cast<int>(state.range(0)));
  ViewQuery q{"T", {"r1", "s1"}, nullptr};
  for (auto _ : state) {
    sys.mediator->SubmitQuery(q, [](Result<ViewAnswer> ans) {
      Check(ans.status(), "query");
    });
    Drain(sys.scheduler.get());
  }
  state.counters["polls"] = static_cast<double>(sys.mediator->stats().polls);
}
BENCHMARK(BM_E3_MaterializedAttrQuery)->Arg(1000)->Arg(10000);

void BM_E3_VirtualAttrQuery(benchmark::State& state) {
  VapStrategy strategy =
      state.range(1) == 0 ? VapStrategy::kChildBased : VapStrategy::kKeyBased;
  Fig1System sys = MakeHybrid(strategy, static_cast<int>(state.range(0)));
  ViewQuery q{"T", {"r3", "s1"},
              Unwrap(ParsePredicate("r3 < 100"), "pred")};
  for (auto _ : state) {
    sys.mediator->SubmitQuery(q, [](Result<ViewAnswer> ans) {
      Check(ans.status(), "query");
    });
    Drain(sys.scheduler.get());
  }
  state.SetLabel(state.range(1) == 0 ? "child_based" : "key_based");
}
BENCHMARK(BM_E3_VirtualAttrQuery)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E3ClaimTable();
  return 0;
}
