// Experiment E16: storage-integrity overhead — what checksummed framing
// costs in WAL/checkpoint bytes and in recovery time.
//
// One workload per scale: a HardState whose T repository holds `rows`
// tuples, then `txns` update transactions driven through DurabilityManager
// (enqueue records, begin/commit pairs with per-node deltas and reflect
// advances, a checkpoint every `ckpt_every` commits — so the log retains the
// dual-generation structure recovery actually sees). The same workload runs
// twice, framing on and framing off, and reports per mode:
//
//   - log build time (appends + checkpoints), median-of-3 over fresh devices
//   - bytes appended (WAL + checkpoints) and bytes retained post-truncation
//   - Recover() wall time, median-of-3 over fresh managers on one device
//
// Self-validation (exports_match): the bench maintains a live oracle
// HardState alongside the log exactly as the mediator would, and both modes'
// recovered states must Encode() byte-identical to it — a framing toggle
// must never change WHAT recovers, only how damage would be detected.
//
// Standalone driver in the E13/E14/E15 mold: emits a JSON report (default
// BENCH_pr8.json) that bench/run_bench.sh commits as the PR baseline and
// that the SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e16_storage_integrity [--smoke] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "delta/delta.h"
#include "mediator/durability/durability.h"
#include "mediator/durability/log_device.h"
#include "source/messages.h"

namespace squirrel {
namespace bench {
namespace {

constexpr int kReps = 3;  // median-of-3 everywhere

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct WorkloadSpec {
  int rows = 0;        // initial T repository cardinality
  int txns = 0;        // update transactions logged after the base checkpoint
  int per_txn = 3;     // enqueues (and inserted tuples) per transaction
  uint64_t ckpt_every = 64;  // commits between checkpoints
};

/// The base hard state: T(r1, s1) with `rows` tuples and one known source.
HardState BaseState(const WorkloadSpec& spec) {
  HardState hs;
  Relation t(SchemaOf("T(r1, s1)"), Semantics::kBag);
  for (int i = 0; i < spec.rows; ++i) {
    Check(t.Insert(Tuple({int64_t{i}, int64_t{i % 997}})), "seed T");
  }
  hs.repos.emplace("T", std::move(t));
  hs.sources["DB1"] = {};  // defaults: seq 0, reflect 0, healthy, epoch 1
  return hs;
}

/// One announcement as a source would send it: a small MultiDelta payload.
UpdateMessage MakeMsg(uint64_t seq, double send_time, int64_t key) {
  UpdateMessage msg;
  msg.source = "DB1";
  msg.seq = seq;
  msg.epoch = 1;
  msg.send_time = send_time;
  Delta* d = msg.delta.Mutable("R", SchemaOf("R(a, b)"));
  Check(d->AddInsert(Tuple({key, key % 31})), "msg atom");
  Check(d->AddInsert(Tuple({key + 1, (key + 1) % 31})), "msg atom");
  return msg;
}

/// Drives the whole workload through \p mgr, mutating \p oracle in lockstep
/// with what replay will reconstruct (enqueue raises the dedup floor, commit
/// applies the node delta and advances the reflect vector).
void DriveLog(const WorkloadSpec& spec, DurabilityManager* mgr,
              HardState* oracle) {
  Check(mgr->WriteCheckpoint(*oracle), "initial checkpoint");
  uint64_t seq = 0;
  int64_t next_key = spec.rows;
  uint64_t commits = 0;
  for (int t = 0; t < spec.txns; ++t) {
    const double send_time = 0.5 * (t + 1);
    for (int e = 0; e < spec.per_txn; ++e) {
      UpdateMessage msg = MakeMsg(++seq, send_time, next_key + 2 * e);
      Check(mgr->LogEnqueue(msg), "enqueue");
      oracle->sources["DB1"].last_update_seq = seq;
    }
    const uint64_t txn_id = oracle->next_txn_id++;
    Check(mgr->LogTxnBegin(txn_id, spec.per_txn), "begin");
    CommitPayload p;
    p.txn_id = txn_id;
    p.consumed = static_cast<uint64_t>(spec.per_txn);
    Delta d(SchemaOf("T(r1, s1)"));
    for (int e = 0; e < spec.per_txn; ++e) {
      Check(d.AddInsert(Tuple({next_key, next_key % 997})), "commit atom");
      ++next_key;
    }
    Check(ApplyDelta(&oracle->repos.at("T"), d), "oracle apply");
    p.node_deltas.emplace("T", std::move(d));
    p.reflect["DB1"] = send_time;
    oracle->sources["DB1"].last_reflected_send = send_time;
    Check(mgr->LogTxnCommit(p), "commit");
    if (++commits % spec.ckpt_every == 0) {
      Check(mgr->WriteCheckpoint(*oracle), "checkpoint");
    }
  }
}

struct ModeStats {
  double build_ms = 0;
  double recover_ms = 0;
  uint64_t records_logged = 0;
  uint64_t checkpoints_written = 0;
  uint64_t bytes_logged = 0;    // everything ever appended
  uint64_t retained_bytes = 0;  // surviving the dual-generation truncation
  uint64_t records_replayed = 0;
  uint64_t txns_replayed = 0;
  std::string recovered_encoding;  // for the cross-mode/oracle gate
};

ModeStats RunMode(const WorkloadSpec& spec, bool framing) {
  ModeStats m;
  // Build timing over fresh devices (a log can only be built once); the last
  // device is the one recovery is then measured against.
  std::vector<double> build_samples;
  MemLogDevice device;
  DurabilityOptions opts;
  opts.wal = true;
  opts.checkpoint_every = spec.ckpt_every;
  opts.framing = framing;
  for (int i = 0; i < kReps; ++i) {
    MemLogDevice fresh;
    opts.device = (i + 1 == kReps) ? &device : &fresh;
    DurabilityManager mgr(opts);
    HardState oracle = BaseState(spec);
    auto start = std::chrono::steady_clock::now();
    DriveLog(spec, &mgr, &oracle);
    auto end = std::chrono::steady_clock::now();
    build_samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    if (i + 1 == kReps) {
      m.records_logged = mgr.records_logged();
      m.checkpoints_written = mgr.checkpoints_written();
      m.bytes_logged = mgr.bytes_logged();
    }
  }
  m.build_ms = MedianMs(std::move(build_samples));
  m.retained_bytes = device.SizeBytes();

  // Recovery timing: each rep recovers through a fresh manager so the reps
  // are independent (Recover bumps the manager's log epoch, not the device).
  opts.device = &device;
  std::vector<double> recover_samples;
  for (int i = 0; i < kReps; ++i) {
    DurabilityManager mgr(opts);
    auto start = std::chrono::steady_clock::now();
    RecoveredState rec = Unwrap(mgr.Recover(), "recover");
    auto end = std::chrono::steady_clock::now();
    recover_samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
    Check(rec.tail_records_dropped == 0 && rec.checkpoint_fallbacks == 0
              ? Status::OK()
              : Status::Internal("clean log reported anomalies"),
          "anomaly-free recovery");
    m.records_replayed = rec.records_replayed;
    m.txns_replayed = rec.txns_replayed;
    m.recovered_encoding = rec.state.Encode();
  }
  m.recover_ms = MedianMs(std::move(recover_samples));
  return m;
}

struct ScaleReport {
  WorkloadSpec spec;
  ModeStats framed;
  ModeStats unframed;
  double byte_overhead_pct = 0;      // appended bytes, framed vs unframed
  double retained_overhead_pct = 0;  // post-truncation log size
  double recover_slowdown = 0;       // framed / unframed recovery time
  bool exports_match = false;        // both modes == live oracle, byte-wise
};

ScaleReport RunScale(const WorkloadSpec& spec) {
  ScaleReport r;
  r.spec = spec;
  r.framed = RunMode(spec, /*framing=*/true);
  r.unframed = RunMode(spec, /*framing=*/false);
  r.byte_overhead_pct =
      100.0 * (static_cast<double>(r.framed.bytes_logged) -
               static_cast<double>(r.unframed.bytes_logged)) /
      static_cast<double>(r.unframed.bytes_logged);
  r.retained_overhead_pct =
      100.0 * (static_cast<double>(r.framed.retained_bytes) -
               static_cast<double>(r.unframed.retained_bytes)) /
      static_cast<double>(r.unframed.retained_bytes);
  r.recover_slowdown = r.framed.recover_ms / r.unframed.recover_ms;

  // The gate: the oracle state the workload maintained live, and both
  // recovered states, must be one and the same encoding.
  HardState oracle = BaseState(spec);
  {
    MemLogDevice scratch;
    DurabilityOptions opts;
    opts.device = &scratch;
    opts.checkpoint_every = spec.ckpt_every;
    DurabilityManager mgr(opts);
    DriveLog(spec, &mgr, &oracle);
  }
  const std::string expect = oracle.Encode();
  r.exports_match = r.framed.recovered_encoding == expect &&
                    r.unframed.recovered_encoding == expect;
  return r;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ModeJson(const ModeStats& m) {
  return "{\"build_ms\": " + Num(m.build_ms) +
         ", \"recover_ms\": " + Num(m.recover_ms) +
         ", \"records_logged\": " + std::to_string(m.records_logged) +
         ", \"checkpoints_written\": " +
         std::to_string(m.checkpoints_written) +
         ", \"bytes_logged\": " + std::to_string(m.bytes_logged) +
         ", \"retained_bytes\": " + std::to_string(m.retained_bytes) +
         ", \"records_replayed\": " + std::to_string(m.records_replayed) +
         ", \"txns_replayed\": " + std::to_string(m.txns_replayed) + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e16_storage_integrity\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"reps\": " << kReps << ",\n  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"rows\": " << r.spec.rows << ", \"txns\": " << r.spec.txns
        << ", \"per_txn\": " << r.spec.per_txn
        << ", \"ckpt_every\": " << r.spec.ckpt_every << ",\n"
        << "     \"framed\": " << ModeJson(r.framed) << ",\n"
        << "     \"unframed\": " << ModeJson(r.unframed) << ",\n"
        << "     \"byte_overhead_pct\": " << Num(r.byte_overhead_pct)
        << ", \"retained_overhead_pct\": " << Num(r.retained_overhead_pct)
        << ", \"recover_slowdown\": " << Num(r.recover_slowdown)
        << ", \"exports_match\": " << (r.exports_match ? "true" : "false")
        << "}" << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed or
/// either mode's recovered state diverged from the live oracle.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e16_storage_integrity\"", "\"scales\"", "\"framed\"",
        "\"unframed\"", "\"recover_ms\"", "\"bytes_logged\"",
        "\"retained_bytes\"", "\"byte_overhead_pct\"",
        "\"retained_overhead_pct\"", "\"recover_slowdown\"",
        "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: a recovered state diverged from the live oracle "
                 "(exports_match false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr8.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<WorkloadSpec> specs =
      smoke ? std::vector<WorkloadSpec>{{500, 30, 3, 16}}
            : std::vector<WorkloadSpec>{
                  {2000, 240, 3, 64}, {20000, 120, 3, 64}, {100000, 60, 3, 64}};

  std::vector<ScaleReport> scales;
  for (const WorkloadSpec& spec : specs) {
    ScaleReport r = RunScale(spec);
    std::fprintf(stderr,
                 "rows=%d txns=%d bytes=%llu/%llu (+%.2f%%) retained +%.2f%% "
                 "recover=%.2f/%.2fms (%.2fx) match=%s\n",
                 spec.rows, spec.txns,
                 static_cast<unsigned long long>(r.framed.bytes_logged),
                 static_cast<unsigned long long>(r.unframed.bytes_logged),
                 r.byte_overhead_pct, r.retained_overhead_pct,
                 r.framed.recover_ms, r.unframed.recover_ms,
                 r.recover_slowdown, r.exports_match ? "yes" : "NO");
    scales.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
