// Experiment E14: concurrent mediator — MVCC snapshot reads + parallel IUP.
//
// Drives a K-branch fully materialized VDP (K independent R' ⋈ S' exports,
// so same-level firings have disjoint parent sets) with a mixed workload:
// one writer streams update batches through the IUP while reader threads
// answer export queries. Two modes over byte-identical workloads:
//
//   serialized — the pre-PR discipline: a global store mutex, queries read
//     the live repositories, the kernel runs single-threaded. Readers block
//     behind every commit (and each other).
//   concurrent — the PR's machinery: the kernel fires on a thread pool, the
//     writer publishes an MVCC snapshot after each batch, and readers answer
//     lock-free from pinned snapshots (QueryProcessor::Answer with snap).
//
// Reported per scale: update atoms/sec the writer sustained, queries/sec
// across readers, and query latency p50/p99. Both modes must end with
// repositories byte-identical to an undisturbed serial oracle run
// (exports_match) — the speedup may not cost equivalence.
//
// Standalone driver like E13: emits a JSON report (default BENCH_pr6.json)
// that bench/run_bench.sh commits as the PR baseline and the
// SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e14_concurrent_mediator [--smoke] [--out=PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/query_processor.h"
#include "mediator/vap.h"
#include "relational/operators.h"
#include "relational/parser.h"
#include "vdp/annotation.h"
#include "vdp/builder.h"

namespace squirrel {
namespace bench {
namespace {

/// Offered poll rate per monitor thread (open loop): one poll every 100us,
/// i.e. 10k polls/sec per monitor.
constexpr double kPollIntervalUs = 100.0;

struct ModeStats {
  double window_ms = 0;       ///< measured mixed-workload window
  double update_ms = 0;       ///< writer time actually inside ApplyBatch
  double atoms_per_sec = 0;   ///< update atoms the writer sustained
  uint64_t queries = 0;       ///< reader polls answered in the window
  uint64_t answers_reused = 0;  ///< polls served by version-validated reuse
  double queries_per_sec = 0;
  double q_p50_us = 0;        ///< poll latency percentiles
  double q_p99_us = 0;
};

struct ScaleReport {
  int branches = 0;
  int rows = 0;
  int batches = 0;
  int batch_atoms = 0;  ///< per branch per batch
  int readers = 0;
  int iup_workers = 0;
  int publish_every = 1;  ///< snapshot refresh interval, in batches
  int trials = 1;         ///< mode pairs run; median speedup reported
  ModeStats serialized;
  ModeStats concurrent;
  double mixed_speedup = 0;  ///< concurrent / serialized queries_per_sec
  double update_speedup = 0; ///< serialized / concurrent update_ms
  bool exports_match = false;
};

std::string BranchNode(const char* base, int branch) {
  return std::string(base) + std::to_string(branch);
}

/// K disjoint branches: leaves Rk/Sk, leaf-parents Rk'/Sk', exported SPJ
/// join Tk. No node is shared between branches, so every level-1 firing
/// wave can run all K branches concurrently.
Result<Vdp> BuildVdp(int branches) {
  VdpBuilder b;
  for (int k = 0; k < branches; ++k) {
    const std::string r = BranchNode("R", k), s = BranchNode("S", k);
    const std::string rp = r + "'", sp = s + "'";
    b.Leaf(r, "DB_" + r, r, r + "(r1, r2) key(r1)");
    b.Leaf(s, "DB_" + s, s, s + "(s1, s2) key(s1)");
    b.LeafParent(rp, r, {"r1", "r2"}, "");
    b.LeafParent(sp, s, {"s1", "s2"}, "");
    b.Spj(BranchNode("T", k), {{rp, {"r1", "r2"}, ""}, {sp, {"s1", "s2"}, ""}},
          {"r2 = s1"}, {"r1", "s1", "s2"}, "", /*exported=*/true);
  }
  return b.Build();
}

/// Identical base data and batch stream for every mode: each batch carries
/// one delta per branch leaf Rk (so the kernel sees K disjoint firings).
struct Workload {
  std::vector<Relation> r_base;  ///< per branch
  std::vector<Relation> s_base;
  /// batches[b][k] = the branch-k R delta of batch b.
  std::vector<std::vector<Delta>> batches;
};

Workload MakeWorkload(int branches, int rows, int batches, int batch_atoms,
                      uint64_t seed) {
  Rng rng(seed);
  Workload w;
  std::vector<std::map<int64_t, int64_t>> live(branches);
  for (int k = 0; k < branches; ++k) {
    const std::string r = BranchNode("R", k), s = BranchNode("S", k);
    Relation rb(SchemaOf(r + "(r1, r2)"), Semantics::kBag);
    Relation sb(SchemaOf(s + "(s1, s2)"), Semantics::kBag);
    for (int i = 0; i < rows; ++i) {
      Check(sb.Insert(Tuple({int64_t{i}, rng.UniformInt(0, 999)})), "seed S");
      int64_t r2 = rng.UniformInt(0, rows - 1);
      live[k][i] = r2;
      Check(rb.Insert(Tuple({int64_t{i}, r2})), "seed R");
    }
    w.r_base.push_back(std::move(rb));
    w.s_base.push_back(std::move(sb));
  }
  std::vector<int64_t> next_key(branches, rows);
  for (int b = 0; b < batches; ++b) {
    std::vector<Delta> per_branch;
    for (int k = 0; k < branches; ++k) {
      Delta d(SchemaOf(BranchNode("R", k) + "(r1, r2)"));
      for (int a = 0; a < batch_atoms; ++a) {
        if (!live[k].empty() && rng.Bernoulli(0.4)) {
          auto it = live[k].begin();
          std::advance(it, static_cast<long>(rng.Uniform(live[k].size())));
          Check(d.Add(Tuple({it->first, it->second}), -1), "delete atom");
          live[k].erase(it);
        } else {
          int64_t r1 = next_key[k]++;
          int64_t r2 = rng.UniformInt(0, rows - 1);
          live[k][r1] = r2;
          Check(d.Add(Tuple({r1, r2}), 1), "insert atom");
        }
      }
      per_branch.push_back(std::move(d));
    }
    w.batches.push_back(std::move(per_branch));
  }
  return w;
}

/// One mediator stack seeded from the workload (fully materialized, so
/// RunKernel needs no temporaries and export queries need no polls).
struct Stack {
  const Vdp* vdp;
  int branches;
  Annotation ann;  // empty = fully materialized
  LocalStore store;
  Vap vap;
  Iup iup;
  QueryProcessor qp;

  Stack(const Vdp* v, int k)
      : vdp(v),
        branches(k),
        store(v, &ann),
        vap(v, &ann, &store),
        iup(v, &ann, &store, &vap),
        qp(v, &ann, &store, &vap) {}

  void Seed(const Workload& w) {
    for (int k = 0; k < branches; ++k) {
      Check(store.SetRepo(BranchNode("R", k) + "'", w.r_base[k]), "seed R'");
      Check(store.SetRepo(BranchNode("S", k) + "'", w.s_base[k]), "seed S'");
      Relation joined =
          Unwrap(OpJoin(w.r_base[k], w.s_base[k],
                        Unwrap(ParsePredicate("r2 = s1"), "join cond")),
                 "seed join");
      Relation t = Unwrap(OpProject(joined, {"r1", "s1", "s2"}), "seed T");
      Check(store.SetRepo(BranchNode("T", k), std::move(t)), "seed T repo");
    }
  }

  void ApplyBatch(const std::vector<Delta>& per_branch) {
    std::map<std::string, Delta> leaf_deltas;
    for (int k = 0; k < branches; ++k) {
      leaf_deltas.emplace(BranchNode("R", k), per_branch[k]);
    }
    TempStore temps;
    Unwrap(iup.RunKernel(leaf_deltas, &temps), "kernel");
  }
};

/// Answers one prepared export query; returns the result cardinality so the
/// work cannot be optimized away.
size_t RunQuery(const Stack& s, const PreparedQuery& pq,
                const StoreSnapshot* snap) {
  auto ans = s.qp.Answer(pq, nullptr, nullptr, snap);
  Check(ans.status(), "query");
  return ans->data.DistinctSize();
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

/// Runs the mixed workload with the writer PACED at one batch per
/// \p pace_ms: both modes sustain the same update rate over the same wall
/// window (the ISSUE's "queries/sec while the IUP sustains N atoms/sec"),
/// so queries_per_sec and the latency percentiles are directly comparable.
/// A free-running writer would instead measure how badly readers starve
/// the writer, which differs per mode and muddies both numbers.
///
/// In snapshot mode the writer refreshes the published snapshot every
/// \p publish_every batches rather than after every commit — the
/// materialized-refresh staleness/cost knob: readers stay lock-free on a
/// slightly older consistent version while the copy cost amortizes.
ModeStats DriveMixed(Stack* s, const Workload& w, int batch_atoms,
                     int readers, bool use_snapshots, ThreadPool* pool,
                     double pace_ms, int publish_every) {
  s->iup.SetThreadPool(pool);
  if (use_snapshots) s->store.PublishSnapshot(TimeVector{});

  std::mutex store_mu;  // serialized mode's global lock
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::vector<double>> latencies(readers);
  std::vector<uint64_t> reused(readers, 0);

  // Every reader is an export monitor: it polls the current answer of
  // σ(Tk) round-robin over the branches.
  std::vector<PreparedQuery> queries;
  for (int k = 0; k < s->branches; ++k) {
    ViewQuery q;
    q.relation = BranchNode("T", k);
    q.cond = Unwrap(ParsePredicate("s2 < 500"), "query cond");
    queries.push_back(Unwrap(s->qp.Prepare(q), "prepare"));
  }

  // In snapshot mode a poll first pins the latest snapshot and compares
  // its version against the one the cached answer was computed at: equal
  // versions certify the cached answer byte-for-byte (immutability), so
  // the poll is answered without rescanning. The serialized store exposes
  // no validity token, so every poll must re-answer under the lock —
  // reuse there would silently serve unbounded staleness.
  struct Memo {
    uint64_t version = 0;
    bool valid = false;
    size_t n = 0;
  };

  // Monitors poll open-loop at a fixed offered rate; a mode that cannot
  // keep up simply answers fewer polls (no unbounded backlog: a late
  // monitor resumes from "now" rather than bursting to catch up).
  const auto poll_interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::micro>(kPollIntervalUs));

  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      size_t k = static_cast<size_t>(r) % queries.size();
      std::vector<Memo> memo(queries.size());
      auto next_poll = std::chrono::steady_clock::now();
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_until(next_poll);
        next_poll += poll_interval;
        auto t0 = std::chrono::steady_clock::now();
        if (next_poll < t0) next_poll = t0;
        size_t n;
        if (use_snapshots) {
          StoreSnapshotPtr snap = s->store.Snapshot();
          Memo& m = memo[k];
          if (m.valid && snap != nullptr && m.version == snap->version()) {
            n = m.n;
            ++reused[r];
          } else {
            n = RunQuery(*s, queries[k], snap.get());
            if (snap != nullptr) {
              m.version = snap->version();
              m.n = n;
              m.valid = true;
            }
          }
        } else {
          std::lock_guard<std::mutex> lock(store_mu);
          n = RunQuery(*s, queries[k], nullptr);
        }
        auto t1 = std::chrono::steady_clock::now();
        latencies[r].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        sink.fetch_add(n, std::memory_order_relaxed);
        k = (k + 1) % queries.size();
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  auto next_tick = start;
  double update_ms = 0;
  for (size_t i = 0; i < w.batches.size(); ++i) {
    std::this_thread::sleep_until(next_tick);
    next_tick += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(pace_ms));
    auto t0 = std::chrono::steady_clock::now();
    if (use_snapshots) {
      s->ApplyBatch(w.batches[i]);
      if ((i + 1) % static_cast<size_t>(publish_every) == 0 ||
          i + 1 == w.batches.size()) {
        s->store.PublishSnapshot(TimeVector{});
      }
    } else {
      std::lock_guard<std::mutex> lock(store_mu);
      s->ApplyBatch(w.batches[i]);
    }
    update_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  auto end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  s->iup.SetThreadPool(nullptr);

  ModeStats stats;
  stats.window_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  stats.update_ms = update_ms;
  const double secs = stats.window_ms / 1000.0;
  stats.atoms_per_sec = static_cast<double>(w.batches.size()) * s->branches *
                        batch_atoms / secs;
  std::vector<double> all;
  for (auto& v : latencies) {
    stats.queries += v.size();
    all.insert(all.end(), v.begin(), v.end());
  }
  for (uint64_t r : reused) stats.answers_reused += r;
  stats.queries_per_sec = static_cast<double>(stats.queries) / secs;
  stats.q_p50_us = Percentile(&all, 0.50);
  stats.q_p99_us = Percentile(&all, 0.99);
  return stats;
}

ScaleReport RunScale(const Vdp& vdp, int branches, int rows, int batches,
                     int batch_atoms, int readers, int workers,
                     int publish_every, int trials, uint64_t seed) {
  ScaleReport report;
  report.branches = branches;
  report.rows = rows;
  report.batches = batches;
  report.batch_atoms = batch_atoms;
  report.readers = readers;
  report.iup_workers = workers;
  report.publish_every = publish_every;
  report.trials = trials;
  Workload w = MakeWorkload(branches, rows, batches, batch_atoms, seed);

  // Undisturbed serial oracle: the equivalence reference for both modes,
  // and the calibration source for the writer pace. One batch per tick at
  // ~20x the serial kernel's own batch cost keeps the writer at a low duty
  // cycle in BOTH modes, so each sustains the same atoms/sec and the
  // queries/sec numbers compare reader efficiency, not writer starvation.
  Stack oracle(&vdp, branches);
  oracle.Seed(w);
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& batch : w.batches) oracle.ApplyBatch(batch);
  double oracle_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  const double pace_ms = std::max(
      {5.0, 20.0 * oracle_ms / static_cast<double>(batches),
       1500.0 / static_cast<double>(batches)});  // window of at least ~1.5s

  // The host's scheduler makes single short runs noisy; run a few trials
  // of each mode pair and report the trial with the median mixed speedup.
  report.exports_match = true;
  struct Trial {
    ModeStats serialized, concurrent;
    double speedup = 0;
  };
  std::vector<Trial> runs;
  ThreadPool pool(workers);
  for (int t = 0; t < trials; ++t) {
    Trial trial;
    Stack serial(&vdp, branches);
    serial.Seed(w);
    trial.serialized =
        DriveMixed(&serial, w, batch_atoms, readers,
                   /*use_snapshots=*/false, nullptr, pace_ms, publish_every);

    Stack conc(&vdp, branches);
    conc.Seed(w);
    trial.concurrent =
        DriveMixed(&conc, w, batch_atoms, readers,
                   /*use_snapshots=*/true, &pool, pace_ms, publish_every);
    trial.speedup =
        trial.concurrent.queries_per_sec / trial.serialized.queries_per_sec;

    for (int k = 0; k < branches; ++k) {
      for (const std::string& node :
           {BranchNode("R", k) + "'", BranchNode("S", k) + "'",
            BranchNode("T", k)}) {
        const Relation* want = Unwrap(oracle.store.Repo(node), "oracle repo");
        const Relation* got_serial = Unwrap(serial.store.Repo(node), "repo");
        const Relation* got_conc = Unwrap(conc.store.Repo(node), "repo");
        if (!want->EqualContents(*got_serial) ||
            !want->EqualContents(*got_conc)) {
          report.exports_match = false;
        }
      }
    }
    runs.push_back(std::move(trial));
  }
  std::sort(runs.begin(), runs.end(),
            [](const Trial& a, const Trial& b) { return a.speedup < b.speedup; });
  const Trial& median = runs[runs.size() / 2];
  report.serialized = median.serialized;
  report.concurrent = median.concurrent;
  report.mixed_speedup = median.speedup;
  report.update_speedup =
      median.serialized.update_ms / median.concurrent.update_ms;
  return report;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ModeJson(const ModeStats& s) {
  return "{\"window_ms\": " + Num(s.window_ms) +
         ", \"update_ms\": " + Num(s.update_ms) +
         ", \"atoms_per_sec\": " + Num(s.atoms_per_sec) +
         ", \"queries\": " + std::to_string(s.queries) +
         ", \"answers_reused\": " + std::to_string(s.answers_reused) +
         ", \"queries_per_sec\": " + Num(s.queries_per_sec) +
         ", \"q_p50_us\": " + Num(s.q_p50_us) +
         ", \"q_p99_us\": " + Num(s.q_p99_us) + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e14_concurrent_mediator\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"poll_interval_us\": " << Num(kPollIntervalUs) << ",\n"
      << "  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"branches\": " << r.branches << ", \"rows\": " << r.rows
        << ", \"batches\": " << r.batches
        << ", \"batch_atoms\": " << r.batch_atoms
        << ", \"readers\": " << r.readers
        << ", \"iup_workers\": " << r.iup_workers
        << ", \"publish_every\": " << r.publish_every
        << ", \"trials\": " << r.trials
        << ",\n     \"serialized\": " << ModeJson(r.serialized)
        << ",\n     \"concurrent\": " << ModeJson(r.concurrent)
        << ",\n     \"mixed_speedup\": " << Num(r.mixed_speedup)
        << ", \"update_speedup\": " << Num(r.update_speedup)
        << ", \"exports_match\": " << (r.exports_match ? "true" : "false")
        << "}" << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed
/// or any mode diverged from the serial oracle.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e14_concurrent_mediator\"", "\"scales\"",
        "\"serialized\"", "\"concurrent\"", "\"queries_per_sec\"",
        "\"answers_reused\"",
        "\"q_p50_us\"", "\"q_p99_us\"", "\"atoms_per_sec\"",
        "\"mixed_speedup\"", "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: a mixed-workload run diverged from the serial "
                 "oracle (exports_match false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr6.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const int branches = 4;
  Vdp vdp = Unwrap(BuildVdp(branches), "vdp");
  struct ScaleSpec {
    int rows, batches, batch_atoms, readers, workers;
  };
  // Snapshot refresh interval (batches per publish) and per-scale trial
  // count; the full run reports the median-speedup trial per scale.
  const int publish_every = 4;
  const int trials = smoke ? 1 : 3;
  std::vector<ScaleSpec> specs =
      smoke ? std::vector<ScaleSpec>{{300, 20, 16, 2, 2}}
            : std::vector<ScaleSpec>{{500, 80, 32, 2, 2},
                                     {1000, 60, 32, 2, 2},
                                     {2000, 40, 32, 4, 2}};

  std::vector<ScaleReport> scales;
  for (const auto& spec : specs) {
    ScaleReport r = RunScale(vdp, branches, spec.rows, spec.batches,
                             spec.batch_atoms, spec.readers, spec.workers,
                             publish_every, trials, /*seed=*/29);
    std::fprintf(stderr,
                 "rows=%d serialized=%.0f q/s (p99 %.0fus) "
                 "concurrent=%.0f q/s (p99 %.0fus) mixed_speedup=%.2fx "
                 "update_speedup=%.2fx match=%s\n",
                 r.rows, r.serialized.queries_per_sec, r.serialized.q_p99_us,
                 r.concurrent.queries_per_sec, r.concurrent.q_p99_us,
                 r.mixed_speedup, r.update_speedup,
                 r.exports_match ? "yes" : "NO");
    scales.push_back(r);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
