// Experiment E10 (§5.3 heuristics): annotation ablation on the Figure 4
// VDP.
//
// The paper gives trade-off guidance rather than hard rules; this ablation
// measures the actual space / update-cost / query-cost of each annotation
// choice for Example 5.1, including the suggestion produced by
// SuggestAnnotation (the implemented §5.3 heuristics).

#include <benchmark/benchmark.h>

#include <chrono>

#include "baselines/zgh_warehouse.h"
#include "bench_util.h"
#include "vdp/planner.h"

namespace squirrel {
namespace bench {
namespace {

struct AblationResult {
  size_t store_bytes = 0;
  uint64_t update_polls = 0;
  uint64_t update_tuples = 0;
  double update_wall_ms = 0;
  double query_mat_ms = 0;
  double query_virt_ms = 0;
  uint64_t query_polls = 0;
};

AblationResult RunConfig(const Annotation& ann) {
  Fig4System sys = MakeFig4System(ann, MediatorOptions{});
  sys.Seed(48);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());

  AblationResult out;
  auto upd_begin = std::chrono::steady_clock::now();
  Time now = 1.0;
  for (int i = 0; i < 32; ++i) {
    sys.Insert(i % 4, now);
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  auto upd_end = std::chrono::steady_clock::now();
  out.update_wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                           upd_end - upd_begin)
                           .count() /
                       1000.0;
  out.update_polls = sys.mediator->stats().polls;
  out.update_tuples = sys.mediator->stats().polled_tuples;
  out.store_bytes = sys.mediator->StoreBytes();

  auto timed_query = [&](const ViewQuery& q) {
    auto begin = std::chrono::steady_clock::now();
    sys.mediator->SubmitQuery(q, [&](Result<ViewAnswer> ans) {
      Check(ans.status(), "query");
      out.query_polls += ans->polls;
    });
    Drain(sys.scheduler.get());
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
               .count() /
           1e6;
  };
  out.query_mat_ms = timed_query(ViewQuery{"G", {}, nullptr});
  out.query_virt_ms = timed_query(ViewQuery{"E", {}, nullptr});
  return out;
}

void E10Table() {
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "vdp");
  struct Config {
    std::string label;
    Annotation ann;
  };
  std::vector<Config> configs;
  configs.push_back({"all materialized", Annotation::AllMaterialized()});
  configs.push_back({"Example 5.1 (B',F virtual; E hybrid)",
                     AnnotationExample51(vdp)});
  configs.push_back({"warehouse (exports only)", WarehouseAnnotation(vdp)});
  {
    // The §5.3 heuristics applied automatically.
    AnnotationHints hints;
    hints.source_update_freq = {{"DBA", 0.1}, {"DBB", 5.0},
                                {"DBC", 0.1}, {"DBD", 0.1}};
    hints.hot_attrs["E"] = {"a1", "b1"};
    configs.push_back({"SuggestAnnotation(B hot)",
                       SuggestAnnotation(vdp, hints)});
  }

  Table table({"annotation", "store_KiB", "upd_polls", "upd_tuples",
               "upd_wall_ms", "qG_ms", "qE_ms", "q_polls"});
  for (auto& cfg : configs) {
    AblationResult r = RunConfig(cfg.ann);
    table.AddRow({cfg.label, Table::Num(r.store_bytes / 1024.0, 1),
                  Table::Int(r.update_polls), Table::Int(r.update_tuples),
                  Table::Num(r.update_wall_ms, 2),
                  Table::Num(r.query_mat_ms, 3),
                  Table::Num(r.query_virt_ms, 3),
                  Table::Int(r.query_polls)});
  }
  table.Print(
      "E10 (§5.3 ablation, Figure 4 VDP): space vs maintenance vs query "
      "cost across annotations (paper claim: the suggested hybrid trades a "
      "modest poll cost for a much smaller store than full "
      "materialization, while keeping export queries local)");
}

/// §5.3: "if no index can be used, a fully virtual join relation is very
/// expensive to compute" — evaluate E virtually vs reading it materialized.
void BM_E10_VirtualVsMaterializedE(benchmark::State& state) {
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "vdp");
  Annotation ann = state.range(0) == 0 ? Annotation::AllMaterialized()
                                       : FullyVirtualAnnotation(vdp);
  Fig4System sys = MakeFig4System(ann, MediatorOptions{});
  sys.Seed(static_cast<int>(state.range(1)));
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  for (auto _ : state) {
    sys.mediator->SubmitQuery(ViewQuery{"E", {}, nullptr},
                              [](Result<ViewAnswer> ans) {
                                Check(ans.status(), "query");
                              });
    Drain(sys.scheduler.get());
  }
  state.SetLabel(state.range(0) == 0 ? "materialized" : "fully_virtual");
}
BENCHMARK(BM_E10_VirtualVsMaterializedE)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 128})
    ->Args({1, 128});

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E10Table();
  return 0;
}
