// Experiment E4 (Figure 2 / Remark 3.1 / Theorem 7.1): consistency.
//
// Reproduces:
//  - the Figure 2 scenario is pseudo-consistent but NOT consistent
//    (Remark 3.1's separation of the two notions);
//  - Squirrel mediator traces pass the full consistency checker
//    (Theorem 7.1), at several configurations;
//  - checker throughput (how expensive independent validation is).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mediator/consistency.h"
#include "relational/parser.h"

namespace squirrel {
namespace bench {
namespace {

void Figure2Table() {
  SourceDb db("DB");
  Check(db.AddRelation("R", SchemaOf("R(p, q)")), "add R");
  // Figure 2's single-tuple history (a..f encoded 1..6).
  const int pairs[6][2] = {{1, 1}, {2, 2}, {3, 1}, {4, 1}, {5, 1}, {6, 1}};
  Tuple prev;
  for (int i = 0; i < 6; ++i) {
    MultiDelta md;
    auto* d = md.Mutable("R", SchemaOf("R(p, q)"));
    if (i > 0) Check(d->AddDelete(prev), "del");
    Tuple cur({pairs[i][0], pairs[i][1]});
    Check(d->AddInsert(cur), "ins");
    Check(db.Commit(i + 1, md), "commit");
    prev = cur;
  }
  AlgebraExpr::Ptr view = Unwrap(ParseAlgebra("project[q](R)"), "view");

  auto make_state = [](int v) {
    Relation r(SchemaOf("S(q)"), Semantics::kSet);
    Check(r.Insert(Tuple({v})), "insert");
    return r;
  };
  struct Scenario {
    const char* label;
    std::vector<ViewObservation> obs;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"Figure 2 (a a b a b a)",
       {{1, make_state(1)},
        {2, make_state(1)},
        {3, make_state(2)},
        {4, make_state(1)},
        {5, make_state(2)},
        {6, make_state(1)}}});
  scenarios.push_back(
      {"monotone (a b a)",
       {{1, make_state(1)}, {2.5, make_state(2)}, {4, make_state(1)}}});
  scenarios.push_back({"future forecast (b at t=1.5)",
                       {{1.5, make_state(2)}}});
  scenarios.push_back({"fabricated state (c)", {{6, make_state(3)}}});

  Table table({"scenario", "pseudo-consistent", "consistent"});
  for (const auto& s : scenarios) {
    bool pseudo = Unwrap(IsPseudoConsistent(db, view, s.obs), "pseudo");
    bool full = Unwrap(IsScenarioConsistent(db, view, s.obs), "full");
    table.AddRow({s.label, pseudo ? "yes" : "NO", full ? "yes" : "NO"});
  }
  table.Print(
      "E4 (Figure 2 / Remark 3.1): pseudo-consistency does not imply "
      "consistency (paper claim: row 1 is pseudo-consistent only)");
}

void MediatorTraceTable() {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  struct Config {
    const char* label;
    Annotation ann;
    Time update_period;
  };
  std::vector<Config> configs;
  configs.push_back({"fully materialized, immediate", AnnotationExample21(),
                     0.0});
  configs.push_back({"fully materialized, batched(5)", AnnotationExample21(),
                     5.0});
  configs.push_back({"virtual R' (Ex 2.2)", AnnotationExample22(vdp), 0.0});
  configs.push_back({"hybrid (Ex 2.3)", AnnotationExample23(vdp), 0.0});

  Table table({"configuration", "txns_checked", "relations_compared",
               "consistent", "check_ms"});
  for (auto& cfg : configs) {
    MediatorOptions options;
    options.update_period = cfg.update_period;
    Fig1System sys = MakeFig1System(cfg.ann, options);
    sys.Seed(200, 32);
    Check(sys.mediator->Start(), "start");
    Time now = 1.0;
    for (int i = 0; i < 40; ++i) {
      if (i % 4 == 3) {
        sys.InsertS(now);
      } else {
        sys.InsertR(now);
      }
      if (i % 3 == 0) {
        sys.scheduler->At(now + 2.0, [&sys]() {
          sys.mediator->SubmitQuery(
              ViewQuery{"T", {"r1", "s1"}, nullptr},
              [](Result<ViewAnswer> ans) { Check(ans.status(), "query"); });
        });
      }
      now += 6.0;
      AdvanceTo(sys.scheduler.get(), now);  // periodic services re-arm
    }
    AdvanceTo(sys.scheduler.get(), now + 60.0);
    ConsistencyChecker checker(&sys.mediator->vdp(),
                               &sys.mediator->annotation(),
                               {sys.db1.get(), sys.db2.get()});
    auto begin = std::chrono::steady_clock::now();
    ConsistencyReport report =
        Unwrap(checker.Check(sys.mediator->trace()), "check");
    auto end = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
            .count() /
        1000.0;
    table.AddRow({cfg.label, Table::Int(report.entries_checked),
                  Table::Int(report.relations_compared),
                  report.consistent() ? "yes" : "NO", Table::Num(ms, 2)});
  }
  table.Print(
      "E4 (Theorem 7.1): every Squirrel trace passes the independent "
      "consistency checker (paper claim: all rows consistent)");
}

void BM_E4_CheckerThroughput(benchmark::State& state) {
  Fig1System sys = MakeFig1System(AnnotationExample21(), MediatorOptions{});
  sys.Seed(static_cast<int>(state.range(0)), 32);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  for (int i = 0; i < 20; ++i) {
    sys.InsertR(now);
    now += 1.0;
    Drain(sys.scheduler.get());
  }
  ConsistencyChecker checker(&sys.mediator->vdp(),
                             &sys.mediator->annotation(),
                             {sys.db1.get(), sys.db2.get()});
  for (auto _ : state) {
    auto report = checker.Check(sys.mediator->trace());
    Check(report.status(), "check");
    benchmark::DoNotOptimize(report->entries_checked);
  }
  state.SetItemsProcessed(state.iterations() *
                          sys.mediator->trace().entries().size());
}
BENCHMARK(BM_E4_CheckerThroughput)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::Figure2Table();
  squirrel::bench::MediatorTraceTable();
  return 0;
}
