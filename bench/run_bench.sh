#!/usr/bin/env bash
# Builds the E13 incremental-index benchmark in Release mode and writes the
# committed baseline report BENCH_pr4.json at the repository root.
#
#   bench/run_bench.sh [output-path]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_path="${1:-$repo_root/BENCH_pr4.json}"
build_dir="$repo_root/build-bench"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target bench_e13_incremental_index -j >/dev/null

"$build_dir/bench/bench_e13_incremental_index" --out="$out_path"
echo "wrote $out_path"
