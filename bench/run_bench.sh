#!/usr/bin/env bash
# Builds the standalone benchmark drivers in Release mode and writes the
# committed baseline reports at the repository root:
#   E13 incremental index      -> BENCH_pr4.json
#   E14 concurrent mediator    -> BENCH_pr6.json
#   E15 columnar execution     -> BENCH_pr7.json
#   E16 storage integrity      -> BENCH_pr8.json
#   E17 sharded topology       -> BENCH_pr9.json
#
#   bench/run_bench.sh [e13-out [e14-out [e15-out [e16-out [e17-out]]]]]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
e13_out="${1:-$repo_root/BENCH_pr4.json}"
e14_out="${2:-$repo_root/BENCH_pr6.json}"
e15_out="${3:-$repo_root/BENCH_pr7.json}"
e16_out="${4:-$repo_root/BENCH_pr8.json}"
e17_out="${5:-$repo_root/BENCH_pr9.json}"
e18_out="${6:-$repo_root/BENCH_pr10.json}"
build_dir="$repo_root/build-bench"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" --target bench_e13_incremental_index \
  bench_e14_concurrent_mediator bench_e15_columnar_exec \
  bench_e16_storage_integrity bench_e17_sharded_topology \
  bench_e18_overload -j >/dev/null

"$build_dir/bench/bench_e13_incremental_index" --out="$e13_out"
echo "wrote $e13_out"
"$build_dir/bench/bench_e14_concurrent_mediator" --out="$e14_out"
echo "wrote $e14_out"
"$build_dir/bench/bench_e15_columnar_exec" --out="$e15_out"
echo "wrote $e15_out"
"$build_dir/bench/bench_e16_storage_integrity" --out="$e16_out"
echo "wrote $e16_out"
"$build_dir/bench/bench_e17_sharded_topology" --out="$e17_out"
echo "wrote $e17_out"
"$build_dir/bench/bench_e18_overload" --out="$e18_out"
echo "wrote $e18_out"
