// Experiment E2 (Example 2.2): virtual auxiliary data.
//
// Paper setting: updates to R are frequent, updates to S are rare. Keeping
// R' virtual (a) eliminates the overhead of continually maintaining R' and
// (b) conserves space — at the price of polling R on the rare S update.
//
// The table sweeps the two annotations over a frequent-R / rare-S workload
// and reports maintenance work, polls, and store size. Expected shape:
//  - fully materialized:  zero polls, larger store, more apply work;
//  - virtual R':          polls only on S updates (rare), smaller store.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace squirrel {
namespace bench {
namespace {

struct RunResult {
  MediatorStats stats;
  size_t store_bytes;
  double wall_ms;
};

RunResult RunWorkload(const Annotation& ann, int r_updates, int s_updates,
                      int base_rows) {
  Fig1System sys = MakeFig1System(ann, MediatorOptions{});
  sys.Seed(base_rows, 64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());

  auto begin = std::chrono::steady_clock::now();
  Time now = 1.0;
  int s_done = 0;
  for (int i = 0; i < r_updates; ++i) {
    sys.InsertR(now);
    // Interleave the rare S updates evenly.
    if (s_done < s_updates &&
        i % std::max(1, r_updates / std::max(1, s_updates)) == 0) {
      sys.InsertS(now + 0.1);
      ++s_done;
    }
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  auto end = std::chrono::steady_clock::now();

  RunResult out;
  out.stats = sys.mediator->stats();
  out.store_bytes = sys.mediator->StoreBytes();
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count() /
      1000.0;
  return out;
}

void E2ClaimTable() {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  const int base_rows = 4000;
  Table table({"annotation", "R_upd", "S_upd", "polls", "polled_tuples",
               "store_KiB", "wall_ms"});
  for (auto [r_updates, s_updates] : {std::pair<int, int>{200, 2},
                                      std::pair<int, int>{200, 20}}) {
    for (int ann_kind = 0; ann_kind < 2; ++ann_kind) {
      Annotation ann = ann_kind == 0 ? AnnotationExample21()
                                     : AnnotationExample22(vdp);
      RunResult r = RunWorkload(ann, r_updates, s_updates, base_rows);
      table.AddRow({ann_kind == 0 ? "fully materialized" : "virtual R'",
                    Table::Int(r_updates), Table::Int(s_updates),
                    Table::Int(r.stats.polls),
                    Table::Int(r.stats.polled_tuples),
                    Table::Num(r.store_bytes / 1024.0, 1),
                    Table::Num(r.wall_ms, 2)});
    }
  }
  table.Print(
      "E2 (Example 2.2): virtual auxiliary R' — frequent R updates need no "
      "polling; rare S updates poll R; space is saved");
}

/// Per-update wall cost of the frequent path (ΔR) under both annotations.
void BM_E2_FrequentRUpdate(benchmark::State& state) {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  Annotation ann =
      state.range(0) == 0 ? AnnotationExample21() : AnnotationExample22(vdp);
  Fig1System sys = MakeFig1System(ann, MediatorOptions{});
  sys.Seed(4000, 64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  for (auto _ : state) {
    sys.InsertR(now);
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  state.SetLabel(state.range(0) == 0 ? "fully_materialized" : "virtual_Rp");
  state.counters["polls"] = static_cast<double>(sys.mediator->stats().polls);
}
BENCHMARK(BM_E2_FrequentRUpdate)->Arg(0)->Arg(1);

/// Per-update wall cost of the rare path (ΔS, polls R when R' virtual).
void BM_E2_RareSUpdate(benchmark::State& state) {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  Annotation ann =
      state.range(0) == 0 ? AnnotationExample21() : AnnotationExample22(vdp);
  Fig1System sys = MakeFig1System(ann, MediatorOptions{});
  sys.Seed(4000, 64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  for (auto _ : state) {
    sys.InsertS(now);
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  state.SetLabel(state.range(0) == 0 ? "fully_materialized" : "virtual_Rp");
  state.counters["polls"] = static_cast<double>(sys.mediator->stats().polls);
}
BENCHMARK(BM_E2_RareSUpdate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E2ClaimTable();
  return 0;
}
