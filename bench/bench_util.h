// Shared scenario builders and workload generators for the experiment
// benchmarks (see DESIGN.md §3 for the experiment index E1-E12).

#ifndef SQUIRREL_BENCH_BENCH_UTIL_H_
#define SQUIRREL_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "source/source_db.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace bench {

/// Dies on error — benchmarks have no business continuing past one.
inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

inline Schema SchemaOf(const std::string& decl) {
  return Unwrap(ParseSchemaDecl(decl), "schema").schema;
}

/// The Figure 1 scenario: DB1.R(r1,r2,r3,r4), DB2.S(s1,s2,s3), export T.
struct Fig1System {
  std::unique_ptr<SourceDb> db1, db2;
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<Mediator> mediator;
  Rng rng{42};
  int64_t next_r_key = 0;
  std::vector<Tuple> live_r, live_s;

  /// Populates R with \p r_rows rows (60% passing r4=100) and S with
  /// \p s_rows rows over join keys 0..s_rows*100.
  void Seed(int r_rows, int s_rows);
  /// Commits one random R insert (always passing the r4 filter).
  void InsertR(Time now);
  /// Commits one random R delete (if any row is live).
  void DeleteR(Time now);
  /// Commits one random S insert.
  void InsertS(Time now);
};

/// Builds the Figure 1 system with the given annotation and options.
Fig1System MakeFig1System(const Annotation& ann, MediatorOptions options,
                          Time comm = 0.5, Time q_proc = 0.2,
                          Time announce = 0.0);

/// The Figure 4 scenario: A(a1,a2), B(b1,b2), C(c1,a1), D(d1,b1) across
/// four sources; exports E and G (Example 5.1).
struct Fig4System {
  std::vector<std::unique_ptr<SourceDb>> dbs;  // DBA, DBB, DBC, DBD
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<Mediator> mediator;
  Rng rng{7};
  int64_t next_key = 0;

  /// Populates every relation with \p rows keyed rows.
  void Seed(int rows);
  /// Commits a random insert into relation index 0..3 (A, B, C, D).
  void Insert(size_t rel, Time now);
};

Fig4System MakeFig4System(const Annotation& ann, MediatorOptions options,
                          Time comm = 0.5, Time q_proc = 0.2);

/// Runs events until the queue is empty (event-capped). Virtual time
/// advances only to the last event, keeping externally tracked timestamps
/// meaningful. ONLY for setups without periodic services (no announce
/// period, no update period) — those re-arm forever and would spin to the
/// cap.
inline void Drain(Scheduler* scheduler, size_t cap = 50000000) {
  scheduler->Run(cap);
}

/// Advances virtual time to exactly \p t, firing everything due. Use for
/// setups WITH periodic services; pair commits/queries scheduled at
/// absolute times with AdvanceTo of the same timeline.
inline void AdvanceTo(Scheduler* scheduler, Time t) {
  scheduler->RunUntil(t);
}

/// Fixed-width table printing for experiment outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(const std::string& title) const;

  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bench
}  // namespace squirrel

#endif  // SQUIRREL_BENCH_BENCH_UTIL_H_
