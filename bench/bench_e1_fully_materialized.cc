// Experiment E1 (Figure 1 / Example 2.1): fully materialized support.
//
// Claims reproduced:
//  - the integrated view T is maintained purely from incremental updates
//    and local auxiliary data — ZERO source polls during maintenance;
//  - queries against T are answered entirely from the local store;
//  - update-propagation latency scales with the delta, not the view.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mediator/query.h"

namespace squirrel {
namespace bench {
namespace {

/// Wall-clock cost of propagating one R insert at view size |R| = size.
void BM_E1_UpdatePropagation(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Fig1System sys = MakeFig1System(AnnotationExample21(), MediatorOptions{});
  sys.Seed(size, 64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  for (auto _ : state) {
    sys.InsertR(now);
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["polls"] =
      static_cast<double>(sys.mediator->stats().polls);
}
BENCHMARK(BM_E1_UpdatePropagation)->Arg(1000)->Arg(10000)->Arg(50000);

/// Wall-clock cost of a full-view query at view size |R| = size.
void BM_E1_QueryLatency(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  Fig1System sys = MakeFig1System(AnnotationExample21(), MediatorOptions{});
  sys.Seed(size, 64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  ViewQuery q{"T", {"r1", "s1"}, nullptr};
  size_t rows = 0;
  for (auto _ : state) {
    bool done = false;
    sys.mediator->SubmitQuery(q, [&](Result<ViewAnswer> ans) {
      Check(ans.status(), "query");
      rows = ans->data.DistinctSize();
      done = true;
    });
    Drain(sys.scheduler.get());
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["result_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_E1_QueryLatency)->Arg(1000)->Arg(10000)->Arg(50000);

/// The paper-claim table: propagate a mixed workload and report that no
/// polls were ever issued and that all repositories stayed exact.
void E1ClaimTable() {
  Table table({"workload", "update_txns", "rules_fired", "atoms_propagated",
               "polls", "store_KiB"});
  for (int updates : {50, 200, 800}) {
    Fig1System sys =
        MakeFig1System(AnnotationExample21(), MediatorOptions{});
    sys.Seed(2000, 64);
    Check(sys.mediator->Start(), "start");
    Drain(sys.scheduler.get());
    Time now = 1.0;
    for (int i = 0; i < updates; ++i) {
      if (i % 3 == 2) {
        sys.DeleteR(now);
      } else {
        sys.InsertR(now);
      }
      if (i % 10 == 9) sys.InsertS(now + 0.1);
      Drain(sys.scheduler.get());
      now += 1.0;
    }
    const MediatorStats& stats = sys.mediator->stats();
    table.AddRow({std::to_string(updates) + " updates",
                  Table::Int(stats.update_txns),
                  Table::Int(stats.iup.rules_fired),
                  Table::Int(stats.iup.atoms_propagated),
                  Table::Int(stats.polls),
                  Table::Num(sys.mediator->StoreBytes() / 1024.0, 1)});
  }
  table.Print(
      "E1 (Example 2.1): fully materialized support — maintenance without "
      "source polling (paper claim: polls = 0)");
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E1ClaimTable();
  return 0;
}
