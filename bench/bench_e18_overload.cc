// Experiment E18: what overload protection buys — the SAME update stream +
// query storm run with the admission gate off and on (DESIGN.md §15).
//
// One workload per scale: seeded R/S populations, a stream of R/S commits,
// and bursts of storm queries against Example 2.3's hybrid annotation (every
// storm query polls both sources, so a burst piles onto the serialized
// transaction slot). Every storm query carries a deadline (the SLO): the
// tentpole guarantee makes each one terminate by that deadline with an
// answer or a typed error, so "resolution latency" is well-defined for all
// of them. Three runs per scale, each inside its own deterministic
// scheduler:
//
//   - oracle:       the storm off entirely (the exports_match baseline)
//   - no_admission: storm on, gate unlimited — queries queue behind the
//                   txn slot until their deadline kills them
//   - admission:    storm on, per-class active+queued caps — the overflow
//                   is refused in its arrival event with kOverloaded +
//                   retry-after, the admitted fraction meets its deadline
//
// Reports per configuration: median-of-3 wall time to drain, p50/p99
// resolution latency in virtual time over ALL storm queries (a rejection
// resolves in its arrival event, a deadline expiry at the deadline), the
// same percentiles over answered queries only, and goodput — the fraction
// of the storm answered within its SLO.
//
// Self-validation: the final full-T query (internal class, never gated) of
// all three runs must render byte-identically — overload shedding is loss
// of availability, never of correctness — and the admission run's all-in
// p99 must not exceed the no-admission run's (the gate holds p99 bounded
// under storm: refusing work beats timing out on it).
//
// Standalone driver in the E13-E17 mold: emits a JSON report (default
// BENCH_pr10.json) that bench/run_bench.sh commits as the PR baseline and
// that the SQUIRREL_BENCH_SMOKE ctest validates.
//
//   bench_e18_overload [--smoke] [--out=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "vdp/paper_examples.h"

namespace squirrel {
namespace bench {
namespace {

constexpr int kReps = 3;          // median-of-3 wall times
constexpr Time kSlo = 8.0;        // per-query deadline budget (virtual time)
constexpr Time kBurstEvery = 15;  // storm burst cadence
constexpr int kBurstSize = 10;    // queries per burst, 0.01 apart

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

double Pct(const std::vector<double>& sorted, int p) {
  if (sorted.empty()) return 0;
  return sorted[std::min(sorted.size() - 1, (sorted.size() * p) / 100)];
}

struct WorkloadSpec {
  int r_rows = 0;
  int s_rows = 0;
  int ops = 0;    // committed single-atom transactions after the seed
  int storm = 0;  // storm queries, in bursts of kBurstSize
};

struct Op {
  Time when = 0;
  int db = 0;  // 0 = DB1 (R), 1 = DB2 (S)
  bool insert = true;
  Tuple tuple;
};

struct StormQuery {
  Time when = 0;
  QueryClass qclass = QueryClass::kInteractive;
};

/// The seed populations, op schedule, and storm arrivals, generated ONCE per
/// scale so every configuration sees byte-identical inputs on an identical
/// timeline.
struct Workload {
  WorkloadSpec spec;
  std::vector<Tuple> r_seed, s_seed;
  std::vector<Op> ops;
  std::vector<StormQuery> storm;
  Time t_end = 0;
};

Workload MakeWorkload(const WorkloadSpec& spec) {
  Workload w;
  w.spec = spec;
  Rng rng(20260809 + static_cast<uint64_t>(spec.ops));
  std::vector<Tuple> live_r, live_s;
  int64_t next_r_key = 0;
  for (int i = 0; i < spec.r_rows; ++i) {
    int64_t join = rng.UniformInt(0, std::max(1, spec.s_rows - 1)) * 100;
    int64_t r4 = rng.Bernoulli(0.6) ? 100 : 7;
    Tuple t({next_r_key++, join, rng.UniformInt(0, 1000), r4});
    w.r_seed.push_back(std::move(t));
  }
  for (int i = 0; i < spec.s_rows; ++i) {
    Tuple t({int64_t{i} * 100, rng.UniformInt(0, 50), rng.UniformInt(0, 49)});
    live_s.push_back(t);
    w.s_seed.push_back(std::move(t));
  }
  Time t = 1.0;
  for (int i = 0; i < spec.ops; ++i) {
    Op op;
    op.when = t;
    double dice = rng.UniformDouble();
    if (dice < 0.6 || live_r.empty()) {  // R insert passing the r4 filter
      int64_t join = live_s[rng.Uniform(live_s.size())].at(0).AsInt();
      op.db = 0;
      op.tuple =
          Tuple({next_r_key++, join, rng.UniformInt(0, 1000), int64_t{100}});
      live_r.push_back(op.tuple);
    } else {  // R delete
      size_t idx = rng.Uniform(live_r.size());
      op.db = 0;
      op.insert = false;
      op.tuple = live_r[idx];
      live_r.erase(live_r.begin() + static_cast<ptrdiff_t>(idx));
    }
    w.ops.push_back(op);
    t += 1.5;
  }
  // Storm bursts: kBurstSize back-to-back full-T queries every kBurstEvery
  // time units, alternating interactive/batch — a burst lands faster than
  // the serialized slot can possibly drain it.
  Time burst_at = 5.0;
  for (int i = 0; i < spec.storm; ++i) {
    if (i > 0 && i % kBurstSize == 0) burst_at += kBurstEvery;
    StormQuery q;
    q.when = burst_at + 0.01 * (i % kBurstSize);
    q.qclass =
        (i % 2 == 0) ? QueryClass::kInteractive : QueryClass::kBatch;
    w.storm.push_back(q);
  }
  Time last = std::max(t, w.storm.empty() ? 0.0 : w.storm.back().when);
  w.t_end = last + kSlo + 30.0;  // every deadline fires before the drain ends
  return w;
}

struct Deployment {
  std::unique_ptr<Scheduler> scheduler;
  std::unique_ptr<SourceDb> db1, db2;
  std::unique_ptr<Mediator> mediator;
};

std::unique_ptr<Deployment> MakeDeployment(const Workload& w, bool gated) {
  auto d = std::make_unique<Deployment>();
  d->scheduler = std::make_unique<Scheduler>();
  d->db1 = std::make_unique<SourceDb>("DB1");
  d->db2 = std::make_unique<SourceDb>("DB2");
  Check(d->db1->AddRelation("R", SchemaOf("R(r1, r2, r3, r4) key(r1)")),
        "declare R");
  Check(d->db2->AddRelation("S", SchemaOf("S(s1, s2, s3) key(s1)")),
        "declare S");
  {
    MultiDelta mr;
    Delta* dr = mr.Mutable("R", SchemaOf("R(r1, r2, r3, r4) key(r1)"));
    for (const Tuple& t : w.r_seed) Check(dr->AddInsert(t), "seed R");
    Check(d->db1->Commit(0, mr), "commit R seed");
    MultiDelta ms;
    Delta* ds = ms.Mutable("S", SchemaOf("S(s1, s2, s3) key(s1)"));
    for (const Tuple& t : w.s_seed) Check(ds->AddInsert(t), "seed S");
    Check(d->db2->Commit(0, ms), "commit S seed");
  }
  Vdp base = Unwrap(BuildFigure1Vdp(), "figure 1 vdp");
  Annotation ann = AnnotationExample23(base);  // storm queries must poll
  std::vector<SourceSetup> setups = {
      {d->db1.get(), /*comm=*/0.5, /*q_proc=*/0.2, /*announce=*/0.0},
      {d->db2.get(), /*comm=*/0.5, /*q_proc=*/0.2, /*announce=*/0.0},
  };
  MediatorOptions options;
  options.record_trace = false;  // perf run, not a consistency check
  options.snapshot_repos = false;
  if (gated) {
    for (QueryClass cls : {QueryClass::kInteractive, QueryClass::kBatch}) {
      options.admission.max_active[static_cast<size_t>(cls)] = 1;
      options.admission.max_queued[static_cast<size_t>(cls)] = 1;
    }
  }
  d->mediator = Unwrap(Mediator::Create(base, ann, setups,
                                        d->scheduler.get(), options),
                       "create mediator");
  Check(d->mediator->Start(), "start mediator");
  return d;
}

std::string RowsOf(const Relation& rel) {
  std::string out;
  for (const auto& [t, n] : rel.SortedRows()) {
    out += t.ToString();
    if (n > 1) out += "x" + std::to_string(n);
    out += " ";
  }
  return out;
}

struct ConfigMetrics {
  double wall_ms = 0;  // median-of-3 drain time
  uint64_t storm_total = 0, answered = 0, deadline_exceeded = 0,
           rejected = 0;
  double goodput = 0;                     // answered / storm_total
  double all_p50 = 0, all_p99 = 0;        // latency over every resolution
  double answered_p50 = 0, answered_p99 = 0;  // over answered only
  std::string final_rows;                 // for the exports_match gate
};

ConfigMetrics RunConfig(const Workload& w, bool storm, bool gated) {
  ConfigMetrics m;
  std::vector<double> wall_samples;
  for (int rep = 0; rep < kReps; ++rep) {
    auto d = MakeDeployment(w, gated);
    Scheduler* sched = d->scheduler.get();
    for (const Op& op : w.ops) {
      SourceDb* db = op.db == 0 ? d->db1.get() : d->db2.get();
      Schema schema = op.db == 0 ? SchemaOf("R(r1, r2, r3, r4) key(r1)")
                                 : SchemaOf("S(s1, s2, s3) key(s1)");
      const char* rel = op.db == 0 ? "R" : "S";
      sched->At(op.when, [db, sched, op, schema, rel]() {
        MultiDelta md;
        Delta* delta = md.Mutable(rel, schema);
        Check(op.insert ? delta->AddInsert(op.tuple)
                        : delta->AddDelete(op.tuple),
              "op atom");
        Check(db->Commit(sched->Now(), md), "op commit");
      });
    }
    std::vector<double> all_lat, answered_lat;
    uint64_t answered = 0, expired = 0, rejected = 0;
    if (storm) {
      for (const StormQuery& sq : w.storm) {
        Mediator* med = d->mediator.get();
        sched->At(sq.when, [med, sched, sq, &all_lat, &answered_lat,
                            &answered, &expired, &rejected]() {
          ViewQuery q{"T", {}, nullptr};
          q.qclass = sq.qclass;
          q.deadline = sched->Now() + kSlo;
          Time submitted = sched->Now();
          med->SubmitQuery(q, [sched, submitted, &all_lat, &answered_lat,
                               &answered, &expired,
                               &rejected](Result<ViewAnswer> a) {
            double lat = sched->Now() - submitted;
            all_lat.push_back(lat);
            if (a.ok()) {
              ++answered;
              answered_lat.push_back(lat);
            } else if (a.status().code() == StatusCode::kDeadlineExceeded) {
              ++expired;
            } else if (a.status().code() == StatusCode::kOverloaded) {
              ++rejected;
            } else {
              Check(a.status(), "storm query");  // untyped: abort loudly
            }
          });
        });
      }
    }
    auto start = std::chrono::steady_clock::now();
    sched->RunUntil(w.t_end);
    auto end = std::chrono::steady_clock::now();
    wall_samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());

    if (rep + 1 == kReps) {
      Check(all_lat.size() == (storm ? w.storm.size() : 0)
                ? Status::OK()
                : Status::Internal("a storm query never resolved"),
            "storm drained");
      std::string rows;
      ViewQuery fq{"T", {}, nullptr};
      fq.qclass = QueryClass::kInternal;  // never refused by the gate
      d->mediator->SubmitQuery(fq, [&rows](Result<ViewAnswer> a) {
        Check(a.status(), "final query");
        rows = RowsOf(a->data);
      });
      sched->RunUntil(w.t_end + 50.0);
      Check(!rows.empty() ? Status::OK()
                          : Status::Internal("final query never answered"),
            "final query drained");
      m.final_rows = std::move(rows);
      m.storm_total = all_lat.size();
      m.answered = answered;
      m.deadline_exceeded = expired;
      m.rejected = rejected;
      m.goodput = m.storm_total == 0
                      ? 0
                      : static_cast<double>(answered) /
                            static_cast<double>(m.storm_total);
      std::sort(all_lat.begin(), all_lat.end());
      std::sort(answered_lat.begin(), answered_lat.end());
      m.all_p50 = Pct(all_lat, 50);
      m.all_p99 = Pct(all_lat, 99);
      m.answered_p50 = Pct(answered_lat, 50);
      m.answered_p99 = Pct(answered_lat, 99);
    }
  }
  m.wall_ms = MedianMs(std::move(wall_samples));
  return m;
}

struct ScaleReport {
  WorkloadSpec spec;
  ConfigMetrics oracle, no_admission, admission;
  bool exports_match = false;
  bool p99_bounded = false;  // gate holds all-in p99 at or under ungated
};

ScaleReport RunScale(const WorkloadSpec& spec) {
  Workload w = MakeWorkload(spec);
  ScaleReport r;
  r.spec = spec;
  r.oracle = RunConfig(w, /*storm=*/false, /*gated=*/false);
  r.no_admission = RunConfig(w, /*storm=*/true, /*gated=*/false);
  r.admission = RunConfig(w, /*storm=*/true, /*gated=*/true);
  r.exports_match = r.no_admission.final_rows == r.oracle.final_rows &&
                    r.admission.final_rows == r.oracle.final_rows &&
                    !r.oracle.final_rows.empty();
  r.p99_bounded = r.admission.all_p99 <= r.no_admission.all_p99 + 1e-9;
  return r;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string ConfigJson(const ConfigMetrics& m) {
  return "{\"wall_ms\": " + Num(m.wall_ms) +
         ", \"storm_total\": " + std::to_string(m.storm_total) +
         ", \"answered\": " + std::to_string(m.answered) +
         ", \"deadline_exceeded\": " + std::to_string(m.deadline_exceeded) +
         ", \"rejected\": " + std::to_string(m.rejected) +
         ", \"goodput\": " + Num(m.goodput) +
         ", \"all_p50\": " + Num(m.all_p50) +
         ", \"all_p99\": " + Num(m.all_p99) +
         ", \"answered_p50\": " + Num(m.answered_p50) +
         ", \"answered_p99\": " + Num(m.answered_p99) + "}";
}

std::string ReportJson(const std::vector<ScaleReport>& scales, bool smoke) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"e18_overload\",\n"
      << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
      << "  \"reps\": " << kReps << ",\n  \"slo\": " << Num(kSlo)
      << ",\n  \"scales\": [\n";
  for (size_t i = 0; i < scales.size(); ++i) {
    const ScaleReport& r = scales[i];
    out << "    {\"r_rows\": " << r.spec.r_rows
        << ", \"s_rows\": " << r.spec.s_rows << ", \"ops\": " << r.spec.ops
        << ", \"storm\": " << r.spec.storm
        << ",\n     \"oracle\": " << ConfigJson(r.oracle)
        << ",\n     \"no_admission\": " << ConfigJson(r.no_admission)
        << ",\n     \"admission\": " << ConfigJson(r.admission)
        << ",\n     \"p99_bounded\": " << (r.p99_bounded ? "true" : "false")
        << ", \"exports_match\": " << (r.exports_match ? "true" : "false")
        << "}" << (i + 1 < scales.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

/// Schema check for the emitted report; the SQUIRREL_BENCH_SMOKE ctest runs
/// this binary and relies on a non-zero exit when the report is malformed,
/// a storm perturbed the exports, or the gate failed to hold p99.
bool Validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot reopen %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  for (const char* key :
       {"\"bench\": \"e18_overload\"", "\"scales\"", "\"oracle\"",
        "\"no_admission\"", "\"admission\"", "\"goodput\"", "\"all_p99\"",
        "\"answered_p99\"", "\"rejected\"", "\"deadline_exceeded\"",
        "\"p99_bounded\"", "\"exports_match\""}) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "FAIL: report missing %s\n", key);
      return false;
    }
  }
  if (json.find("\"exports_match\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: a storm run's exports diverged from the no-storm "
                 "oracle (exports_match false)\n");
    return false;
  }
  if (json.find("\"p99_bounded\": false") != std::string::npos) {
    std::fprintf(stderr,
                 "FAIL: the admission gate did not hold all-in p99 at or "
                 "under the ungated run (p99_bounded false)\n");
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pr10.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  std::vector<WorkloadSpec> specs =
      smoke ? std::vector<WorkloadSpec>{{60, 30, 24, 20}}
            : std::vector<WorkloadSpec>{{500, 250, 200, 60},
                                        {2000, 1000, 400, 100},
                                        {8000, 4000, 800, 160}};

  std::vector<ScaleReport> scales;
  for (const WorkloadSpec& spec : specs) {
    ScaleReport r = RunScale(spec);
    std::fprintf(
        stderr,
        "r=%d s=%d ops=%d storm=%d goodput=%.2f->%.2f "
        "all_p99=%.2f->%.2f answered_p99=%.2f->%.2f rejected=%llu "
        "match=%s bounded=%s\n",
        spec.r_rows, spec.s_rows, spec.ops, spec.storm,
        r.no_admission.goodput, r.admission.goodput, r.no_admission.all_p99,
        r.admission.all_p99, r.no_admission.answered_p99,
        r.admission.answered_p99,
        static_cast<unsigned long long>(r.admission.rejected),
        r.exports_match ? "yes" : "NO", r.p99_bounded ? "yes" : "NO");
    scales.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << ReportJson(scales, smoke);
  out.close();
  return Validate(out_path) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) { return squirrel::bench::Main(argc, argv); }
