// Experiment E6 (Figure 4 / Example 5.1): a two-export VDP with an
// expensive theta-join (E) and a difference node (G).
//
// Claims reproduced under the paper's suggested annotation
// (B' and F virtual, E hybrid [a1^m a2^v b1^m], rest materialized):
//  - queries on E's materialized attrs and on G stay local;
//  - E's virtual a2 "can be very efficiently retrieved from A'" via the
//    materialized key a1 (key-based fetch);
//  - updates flowing through the virtual F still maintain G correctly,
//    polling C/D as needed.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

namespace squirrel {
namespace bench {
namespace {

void E6ClaimTable() {
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "vdp");
  struct Config {
    const char* label;
    Annotation ann;
  };
  std::vector<Config> configs;
  configs.push_back({"all materialized", Annotation::AllMaterialized()});
  configs.push_back({"Example 5.1 suggested", AnnotationExample51(vdp)});

  Table table({"annotation", "store_KiB", "upd_polls", "qE_mat_ms",
               "qE_virt_ms", "qE_virt_polls", "qG_ms", "qG_polls"});
  for (auto& cfg : configs) {
    Fig4System sys = MakeFig4System(cfg.ann, MediatorOptions{});
    sys.Seed(48);
    Check(sys.mediator->Start(), "start");
    Drain(sys.scheduler.get());

    // Churn across all four sources.
    Time now = 1.0;
    for (int i = 0; i < 40; ++i) {
      sys.Insert(i % 4, now);
      Drain(sys.scheduler.get());
      now += 1.0;
    }
    uint64_t update_polls = sys.mediator->stats().polls;

    auto timed_query = [&](const ViewQuery& q, uint64_t* polls) {
      auto begin = std::chrono::steady_clock::now();
      sys.mediator->SubmitQuery(q, [&](Result<ViewAnswer> ans) {
        Check(ans.status(), "query");
        *polls += ans->polls;
      });
      Drain(sys.scheduler.get());
      auto end = std::chrono::steady_clock::now();
      return std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
                 .count() /
             1e6;
    };
    uint64_t pe_mat = 0, pe_virt = 0, pg = 0;
    double e_mat_ms = timed_query(ViewQuery{"E", {"a1", "b1"}, nullptr},
                                  &pe_mat);
    double e_virt_ms =
        timed_query(ViewQuery{"E", {"a1", "a2"}, nullptr}, &pe_virt);
    double g_ms = timed_query(ViewQuery{"G", {}, nullptr}, &pg);

    table.AddRow({cfg.label,
                  Table::Num(sys.mediator->StoreBytes() / 1024.0, 1),
                  Table::Int(update_polls), Table::Num(e_mat_ms, 3),
                  Table::Num(e_virt_ms, 3), Table::Int(pe_virt),
                  Table::Num(g_ms, 3), Table::Int(pg)});
  }
  table.Print(
      "E6 (Figure 4 / Example 5.1): hybrid E + virtual B'/F — less store, "
      "local queries on materialized attrs, key-based fetch of a2; the "
      "virtual F costs polls during update propagation");
}

/// Theta-join evaluation cost of E at several relation sizes (why the paper
/// calls E "very expensive to evaluate unless at least partially
/// materialized").
void BM_E6_ThetaJoinRecompute(benchmark::State& state) {
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "vdp");
  Fig4System sys =
      MakeFig4System(Annotation::AllMaterialized(), MediatorOptions{});
  sys.Seed(static_cast<int>(state.range(0)));
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  for (auto _ : state) {
    sys.mediator->SubmitQuery(ViewQuery{"E", {}, nullptr},
                              [](Result<ViewAnswer> ans) {
                                Check(ans.status(), "query");
                              });
    Drain(sys.scheduler.get());
  }
}
BENCHMARK(BM_E6_ThetaJoinRecompute)->Arg(32)->Arg(64)->Arg(128);

/// Update propagation into the difference node G.
void BM_E6_DiffPropagation(benchmark::State& state) {
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "vdp");
  Annotation ann = state.range(0) == 0 ? Annotation::AllMaterialized()
                                       : AnnotationExample51(vdp);
  Fig4System sys = MakeFig4System(ann, MediatorOptions{});
  sys.Seed(64);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());
  Time now = 1.0;
  size_t rel = 2;  // C inserts flow through F into G
  for (auto _ : state) {
    sys.Insert(rel, now);
    Drain(sys.scheduler.get());
    now += 1.0;
  }
  state.SetLabel(state.range(0) == 0 ? "all_materialized" : "example51");
  state.counters["polls"] = static_cast<double>(sys.mediator->stats().polls);
}
BENCHMARK(BM_E6_DiffPropagation)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E6ClaimTable();
  return 0;
}
