#include "bench_util.h"

#include <algorithm>

namespace squirrel {
namespace bench {

void Fig1System::Seed(int r_rows, int s_rows) {
  MultiDelta mr;
  Schema r_schema = SchemaOf("R(r1, r2, r3, r4) key(r1)");
  for (int i = 0; i < r_rows; ++i) {
    int64_t key = next_r_key++;
    int64_t join = rng.UniformInt(0, std::max(1, s_rows - 1)) * 100;
    int64_t r4 = rng.Bernoulli(0.6) ? 100 : 7;
    Tuple t({key, join, rng.UniformInt(0, 1000), r4});
    if (r4 == 100) live_r.push_back(t);
    Check(mr.Mutable("R", r_schema)->AddInsert(t), "seed R");
  }
  Check(db1->Commit(0, mr), "commit R seed");

  MultiDelta ms;
  Schema s_schema = SchemaOf("S(s1, s2, s3) key(s1)");
  for (int i = 0; i < s_rows; ++i) {
    Tuple t({int64_t{i} * 100, rng.UniformInt(0, 50),
             rng.UniformInt(0, 99)});
    live_s.push_back(t);
    Check(ms.Mutable("S", s_schema)->AddInsert(t), "seed S");
  }
  Check(db2->Commit(0, ms), "commit S seed");
}

void Fig1System::InsertR(Time now) {
  Schema r_schema = SchemaOf("R(r1, r2, r3, r4) key(r1)");
  int64_t key = next_r_key++;
  int64_t join = live_s.empty()
                     ? 0
                     : live_s[rng.Uniform(live_s.size())].at(0).AsInt();
  Tuple t({key, join, rng.UniformInt(0, 1000), int64_t{100}});
  live_r.push_back(t);
  // Commit inside a simulation event so announcement send times line up
  // with the virtual clock.
  SourceDb* db = db1.get();
  Scheduler* sched = scheduler.get();
  scheduler->At(now, [db, sched, t, r_schema]() {
    MultiDelta md;
    Check(md.Mutable("R", r_schema)->AddInsert(t), "insert R");
    Check(db->Commit(sched->Now(), md), "commit R");
  });
}

void Fig1System::DeleteR(Time now) {
  if (live_r.empty()) return;
  Schema r_schema = SchemaOf("R(r1, r2, r3, r4) key(r1)");
  size_t idx = rng.Uniform(live_r.size());
  Tuple t = live_r[idx];
  live_r.erase(live_r.begin() + idx);
  SourceDb* db = db1.get();
  Scheduler* sched = scheduler.get();
  scheduler->At(now, [db, sched, t, r_schema]() {
    MultiDelta md;
    Check(md.Mutable("R", r_schema)->AddDelete(t), "delete R");
    Check(db->Commit(sched->Now(), md), "commit R delete");
  });
}

void Fig1System::InsertS(Time now) {
  Schema s_schema = SchemaOf("S(s1, s2, s3) key(s1)");
  Tuple t({int64_t{100000} + static_cast<int64_t>(live_s.size()) * 100,
           rng.UniformInt(0, 50), rng.UniformInt(0, 49)});
  live_s.push_back(t);
  SourceDb* db = db2.get();
  Scheduler* sched = scheduler.get();
  scheduler->At(now, [db, sched, t, s_schema]() {
    MultiDelta md;
    Check(md.Mutable("S", s_schema)->AddInsert(t), "insert S");
    Check(db->Commit(sched->Now(), md), "commit S");
  });
}

Fig1System MakeFig1System(const Annotation& ann, MediatorOptions options,
                          Time comm, Time q_proc, Time announce) {
  Fig1System sys;
  sys.db1 = std::make_unique<SourceDb>("DB1");
  sys.db2 = std::make_unique<SourceDb>("DB2");
  Check(sys.db1->AddRelation("R", SchemaOf("R(r1, r2, r3, r4) key(r1)")),
        "add R");
  Check(sys.db2->AddRelation("S", SchemaOf("S(s1, s2, s3) key(s1)")),
        "add S");
  sys.scheduler = std::make_unique<Scheduler>();
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "fig1 vdp");
  std::vector<SourceSetup> setups = {
      {sys.db1.get(), comm, q_proc, announce},
      {sys.db2.get(), comm, q_proc, announce},
  };
  sys.mediator = Unwrap(Mediator::Create(vdp, ann, setups,
                                         sys.scheduler.get(), options),
                        "mediator");
  return sys;
}

namespace {
const char* kFig4Rel[] = {"A", "B", "C", "D"};
const char* kFig4Schema[] = {"A(a1, a2) key(a1)", "B(b1, b2) key(b1)",
                             "C(c1, a1) key(c1)", "D(d1, b1) key(d1)"};
}  // namespace

void Fig4System::Seed(int rows) {
  for (size_t r = 0; r < 4; ++r) {
    MultiDelta md;
    Schema schema = SchemaOf(kFig4Schema[r]);
    for (int i = 0; i < rows; ++i) {
      int64_t key = next_key++;
      int64_t second = 0;
      switch (r) {
        case 0:  // A(a1, a2): small a1 so the inequality often holds
          key = i;
          second = rng.UniformInt(-2, 3);
          break;
        case 1:  // B(b1, b2)
          key = i;
          second = rng.UniformInt(2, 12);
          break;
        case 2:  // C(c1, a1): reference A keys
          second = rng.UniformInt(0, std::max(1, rows - 1));
          break;
        case 3:  // D(d1, b1): reference B keys
          second = rng.UniformInt(0, std::max(1, rows - 1));
          break;
      }
      Check(md.Mutable(kFig4Rel[r], schema)->AddInsert(Tuple({key, second})),
            "seed fig4");
    }
    Check(dbs[r]->Commit(0, md), "commit fig4 seed");
  }
}

void Fig4System::Insert(size_t rel, Time now) {
  Schema schema = SchemaOf(kFig4Schema[rel]);
  int64_t key = 1000000 + next_key++;
  int64_t second;
  switch (rel) {
    case 0:
      // Keep a1*a1 + a2 small so new A rows actually join some B rows.
      second = -(key * key) + rng.UniformInt(0, 100);
      break;
    case 1:
      second = rng.UniformInt(2, 12);
      break;
    default:
      second = rng.UniformInt(0, 63);
      break;
  }
  SourceDb* db = dbs[rel].get();
  Scheduler* sched = scheduler.get();
  std::string rel_name = kFig4Rel[rel];
  scheduler->At(now, [db, sched, schema, rel_name, key, second]() {
    MultiDelta md;
    Check(md.Mutable(rel_name, schema)->AddInsert(Tuple({key, second})),
          "insert fig4");
    Check(db->Commit(sched->Now(), md), "commit fig4");
  });
}

Fig4System MakeFig4System(const Annotation& ann, MediatorOptions options,
                          Time comm, Time q_proc) {
  Fig4System sys;
  const char* names[] = {"DBA", "DBB", "DBC", "DBD"};
  for (size_t i = 0; i < 4; ++i) {
    sys.dbs.push_back(std::make_unique<SourceDb>(names[i]));
    Check(sys.dbs[i]->AddRelation(kFig4Rel[i], SchemaOf(kFig4Schema[i])),
          "add fig4 rel");
  }
  sys.scheduler = std::make_unique<Scheduler>();
  Vdp vdp = Unwrap(BuildFigure4Vdp(), "fig4 vdp");
  std::vector<SourceSetup> setups;
  for (auto& db : sys.dbs) setups.push_back({db.get(), comm, q_proc, 0.0});
  sys.mediator = Unwrap(
      Mediator::Create(vdp, ann, setups, sys.scheduler.get(), options),
      "fig4 mediator");
  return sys;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::printf("\n=== %s ===\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (size_t i = 0; i < headers_.size(); ++i) {
    sep += std::string(widths[i], '-') + "  ";
  }
  std::printf("%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace squirrel
