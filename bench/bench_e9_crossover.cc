// Experiment E9 (§1's motivating claim): the virtual/materialized spectrum.
//
// "Speaking broadly, the virtual approach may be better if the information
// sources are changing frequently, whereas the materialized approach may be
// better if the information sources change infrequently and very fast query
// response time is needed."
//
// The sweep varies the update:query mix and compares four strategies on the
// same Figure 1 scenario:
//   virtual      — the pure query-decomposition baseline (no local state);
//   warehouse    — [ZGHW95]: export materialized, no auxiliary data;
//   materialized — Squirrel fully materialized support (Example 2.1);
//   hybrid       — Squirrel Example 2.3 annotation.
// Reported: source polls, tuples shipped, mean query latency in *virtual*
// time (network delays included), and total maintenance work. Expected
// shape: virtual wins on maintenance as updates dominate; materialized wins
// on query latency; the crossover moves with the mix.

#include <benchmark/benchmark.h>

#include <chrono>

#include "baselines/virtual_mediator.h"
#include "baselines/zgh_warehouse.h"
#include "bench_util.h"

namespace squirrel {
namespace bench {
namespace {

struct MixResult {
  uint64_t polls = 0;
  uint64_t tuples = 0;
  double mean_query_latency = 0;  // virtual time
  double wall_ms = 0;
};

constexpr int kBaseRows = 1500;
constexpr int kSRows = 64;
constexpr Time kComm = 0.5;
constexpr Time kQProc = 0.2;

/// Runs `updates` + `queries` interleaved round-robin on a Squirrel
/// mediator with the given annotation.
MixResult RunSquirrel(const Annotation& ann, int updates, int queries) {
  MediatorOptions options;
  options.q_proc_delay = 0.05;
  Fig1System sys = MakeFig1System(ann, options, kComm, kQProc);
  sys.Seed(kBaseRows, kSRows);
  Check(sys.mediator->Start(), "start");
  Drain(sys.scheduler.get());

  auto begin = std::chrono::steady_clock::now();
  double latency_sum = 0;
  int answered = 0;
  Time now = 10.0;
  int total = updates + queries;
  for (int i = 0; i < total; ++i) {
    // Interleave proportionally.
    bool do_update = (int64_t)i * updates / total <
                     (int64_t)(i + 1) * updates / total;
    if (do_update) {
      sys.InsertR(now);
    } else {
      Time submitted = now;
      sys.scheduler->At(now, [&sys, submitted, &latency_sum, &answered]() {
        sys.mediator->SubmitQuery(
            ViewQuery{"T", {"r1", "s1"}, nullptr},
            [submitted, &latency_sum, &answered](Result<ViewAnswer> ans) {
              Check(ans.status(), "query");
              latency_sum += ans->commit_time - submitted;
              ++answered;
            });
      });
    }
    now += 8.0;
    Drain(sys.scheduler.get());
  }
  auto end = std::chrono::steady_clock::now();

  MixResult out;
  out.polls = sys.mediator->stats().polls;
  out.tuples = sys.mediator->stats().polled_tuples;
  out.mean_query_latency = answered ? latency_sum / answered : 0;
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count() /
      1000.0;
  return out;
}

/// Same workload against the pure-virtual baseline (updates cost nothing at
/// the mediator; queries decompose and fetch).
MixResult RunVirtualBaseline(int updates, int queries) {
  auto db1 = std::make_unique<SourceDb>("DB1");
  auto db2 = std::make_unique<SourceDb>("DB2");
  Check(db1->AddRelation("R", SchemaOf("R(r1, r2, r3, r4) key(r1)")), "R");
  Check(db2->AddRelation("S", SchemaOf("S(s1, s2, s3) key(s1)")), "S");
  Scheduler scheduler;

  // Seed identical data via a throwaway Fig1System generator: reuse the
  // same deterministic stream by seeding directly here.
  Rng rng(42);
  {
    MultiDelta mr;
    Schema rs = SchemaOf("R(r1, r2, r3, r4) key(r1)");
    for (int i = 0; i < kBaseRows; ++i) {
      int64_t r4 = rng.Bernoulli(0.6) ? 100 : 7;
      Check(mr.Mutable("R", rs)->AddInsert(
                Tuple({int64_t{i}, rng.UniformInt(0, kSRows - 1) * 100,
                       rng.UniformInt(0, 1000), r4})),
            "seed");
    }
    Check(db1->Commit(0, mr), "commit");
    MultiDelta ms;
    Schema ss = SchemaOf("S(s1, s2, s3) key(s1)");
    for (int i = 0; i < kSRows; ++i) {
      Check(ms.Mutable("S", ss)->AddInsert(
                Tuple({int64_t{i} * 100, rng.UniformInt(0, 50),
                       rng.UniformInt(0, 99)})),
            "seed");
    }
    Check(db2->Commit(0, ms), "commit");
  }

  PlannerInput input;
  input.scans["R"] = {"DB1", "R", SchemaOf("R(r1, r2, r3, r4) key(r1)")};
  input.scans["S"] = {"DB2", "S", SchemaOf("S(s1, s2, s3) key(s1)")};
  input.exports.push_back(
      {"T", Unwrap(ParseAlgebra("project[r1, r3, s1, s2](select[r4 = 100](R)"
                                " join[r2 = s1] select[s3 < 50](S))"),
                   "view")});
  std::vector<SourceSetup> setups = {{db1.get(), kComm, kQProc, 0.0},
                                     {db2.get(), kComm, kQProc, 0.0}};
  auto med = Unwrap(
      VirtualMediator::Create(std::move(input), setups, &scheduler, 0.0),
      "virtual mediator");
  Check(med->Start(), "start");

  auto begin = std::chrono::steady_clock::now();
  double latency_sum = 0;
  int answered = 0;
  int64_t next_key = kBaseRows;
  Time now = 10.0;
  int total = updates + queries;
  for (int i = 0; i < total; ++i) {
    bool do_update = (int64_t)i * updates / total <
                     (int64_t)(i + 1) * updates / total;
    if (do_update) {
      // Source-side update; the virtual mediator does no work for it.
      Check(db1->InsertTuple(now, "R",
                             Tuple({next_key++,
                                    rng.UniformInt(0, kSRows - 1) * 100,
                                    rng.UniformInt(0, 1000), int64_t{100}})),
            "update");
    } else {
      Time submitted = now;
      scheduler.At(now, [&med, submitted, &latency_sum, &answered]() {
        med->SubmitQuery(
            ViewQuery{"T", {"r1", "s1"}, nullptr},
            [submitted, &latency_sum, &answered](Result<ViewAnswer> ans) {
              Check(ans.status(), "query");
              latency_sum += ans->commit_time - submitted;
              ++answered;
            });
      });
    }
    now += 8.0;
    Drain(&scheduler);
  }
  auto end = std::chrono::steady_clock::now();

  MixResult out;
  out.polls = med->stats().polls;
  out.tuples = med->stats().polled_tuples;
  out.mean_query_latency = answered ? latency_sum / answered : 0;
  out.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
          .count() /
      1000.0;
  return out;
}

void E9Table() {
  Vdp vdp = Unwrap(BuildFigure1Vdp(), "vdp");
  Table table({"mix (upd:qry)", "strategy", "polls", "tuples_shipped",
               "mean_q_latency", "wall_ms"});
  struct Mix {
    const char* label;
    int updates, queries;
  };
  for (const Mix& mix : {Mix{"90:10", 90, 10}, Mix{"50:50", 50, 50},
                         Mix{"10:90", 10, 90}}) {
    MixResult v = RunVirtualBaseline(mix.updates, mix.queries);
    table.AddRow({mix.label, "virtual", Table::Int(v.polls),
                  Table::Int(v.tuples), Table::Num(v.mean_query_latency, 2),
                  Table::Num(v.wall_ms, 1)});
    MixResult w = RunSquirrel(WarehouseAnnotation(vdp), mix.updates,
                              mix.queries);
    table.AddRow({mix.label, "warehouse (ZGHW95)", Table::Int(w.polls),
                  Table::Int(w.tuples), Table::Num(w.mean_query_latency, 2),
                  Table::Num(w.wall_ms, 1)});
    MixResult m = RunSquirrel(AnnotationExample21(), mix.updates,
                              mix.queries);
    table.AddRow({mix.label, "fully materialized", Table::Int(m.polls),
                  Table::Int(m.tuples), Table::Num(m.mean_query_latency, 2),
                  Table::Num(m.wall_ms, 1)});
    MixResult h = RunSquirrel(AnnotationExample23(vdp), mix.updates,
                              mix.queries);
    table.AddRow({mix.label, "hybrid (Ex 2.3)", Table::Int(h.polls),
                  Table::Int(h.tuples), Table::Num(h.mean_query_latency, 2),
                  Table::Num(h.wall_ms, 1)});
  }
  table.Print(
      "E9 (paper §1): the virtual/materialized spectrum — materialized "
      "support gives constant-latency queries but pays per update; the "
      "virtual approach is free under updates but ships data per query; "
      "the warehouse and hybrid points sit between");
}

}  // namespace
}  // namespace bench
}  // namespace squirrel

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  squirrel::bench::E9Table();
  return 0;
}
