// Experiment E12 (§5/§6 machinery): IUP scaling.
//
// How update-propagation latency scales with (a) relation cardinality,
// (b) delta batch size, (c) VDP width (n-way join chains), and (d) VDP
// depth (stacked unions). The VDP-as-static-plan design predicts cost
// proportional to delta size times per-edge join work, independent of the
// number of *unaffected* nodes.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "mediator/iup.h"
#include "mediator/local_store.h"
#include "mediator/vap.h"
#include "vdp/builder.h"

namespace squirrel {
namespace bench {
namespace {

/// Builds a width-N join chain T = L1' ⋈ L2' ⋈ ... ⋈ LN' over N leaves
/// with attrs (k{i}, v{i}) joined on k1 = k2 = ... (star on k values).
Vdp MakeWideVdp(int width) {
  VdpBuilder b;
  std::vector<TermSpec> terms;
  std::vector<std::string> join_conds;
  for (int i = 1; i <= width; ++i) {
    std::string k = "k" + std::to_string(i);
    std::string v = "v" + std::to_string(i);
    std::string leaf = "L" + std::to_string(i);
    b.Leaf(leaf, "DB" + std::to_string(i), leaf,
           leaf + "(" + k + ", " + v + ") key(" + k + ")");
    b.LeafParent(leaf + "'", leaf, {k, v});
    terms.push_back({leaf + "'", {k, v}, ""});
    if (i > 1) join_conds.push_back("k1 = " + k);
  }
  b.Spj("T", terms, join_conds, {}, "", /*exported=*/true);
  return Unwrap(b.Build(), "wide vdp");
}

/// Builds a depth-N chain of unions: U1 = L' ∪ M', U2 = U1 ∪ U1, ... each
/// level a union of the previous with itself (bag doubling).
Vdp MakeDeepVdp(int depth) {
  VdpBuilder b;
  b.Leaf("L", "DB1", "L", "L(k, v) key(k)");
  b.LeafParent("L'", "L", {"k", "v"});
  b.LeafParent("L''", "L", {"k", "v"});
  std::string prev_l = "L'";
  std::string prev_r = "L''";
  std::string name;
  for (int i = 1; i <= depth; ++i) {
    name = "U" + std::to_string(i);
    b.Union(name, {prev_l, {"k", "v"}, ""}, {prev_r, {"k", "v"}, ""},
            /*exported=*/i == depth);
    prev_l = name;
    prev_r = name;
  }
  return Unwrap(b.Build(), "deep vdp");
}

struct DirectRig {
  Vdp vdp;
  Annotation ann;
  std::unique_ptr<LocalStore> store;
  std::unique_ptr<Vap> vap;
  std::unique_ptr<Iup> iup;

  explicit DirectRig(Vdp v) : vdp(std::move(v)) {
    store = std::make_unique<LocalStore>(&vdp, &ann);
    vap = std::make_unique<Vap>(&vdp, &ann, store.get());
    iup = std::make_unique<Iup>(&vdp, &ann, store.get(), vap.get());
  }
};

void SeedWide(DirectRig* rig, int width, int rows) {
  Rng rng(11);
  for (int i = 1; i <= width; ++i) {
    std::string node = "L" + std::to_string(i) + "'";
    Relation contents(rig->vdp.Find(node)->schema, Semantics::kBag);
    for (int r = 0; r < rows; ++r) {
      Check(contents.Insert(Tuple({int64_t{r}, rng.UniformInt(0, 100)})),
            "seed");
    }
    Check(rig->store->SetRepo(node, std::move(contents)), "set repo");
  }
  // T = full recompute via the IUP from an empty start would be costly;
  // instead load T directly for correctness of subsequent deltas.
  NodeStateFn states = [rig](const std::string& node,
                             const std::vector<std::string>&)
      -> Result<std::shared_ptr<const Relation>> {
    SQ_ASSIGN_OR_RETURN(const Relation* repo, rig->store->Repo(node));
    return std::shared_ptr<const Relation>(std::shared_ptr<void>(), repo);
  };
  Relation t = Unwrap(rig->vdp.Find("T")->def->Evaluate(states), "eval T");
  Check(rig->store->SetRepo("T", std::move(t)), "set T");
}

void BM_E12_WidthScaling(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int rows = 2048;
  DirectRig rig(MakeWideVdp(width));
  SeedWide(&rig, width, rows);
  Rng rng(12);
  int64_t next = rows;
  for (auto _ : state) {
    std::map<std::string, Delta> leaf_deltas;
    Delta d(rig.vdp.Find("L1")->schema);
    Check(d.AddInsert(Tuple({next++, rng.UniformInt(0, 100)})), "atom");
    leaf_deltas.emplace("L1", std::move(d));
    TempStore temps;
    IupStats stats = Unwrap(rig.iup->RunKernel(leaf_deltas, &temps),
                            "kernel");
    benchmark::DoNotOptimize(stats.atoms_propagated);
  }
  state.SetLabel("width=" + std::to_string(width));
}
BENCHMARK(BM_E12_WidthScaling)->Arg(2)->Arg(4)->Arg(8);

void BM_E12_BatchScaling(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int rows = 4096;
  DirectRig rig(MakeWideVdp(2));
  SeedWide(&rig, 2, rows);
  Rng rng(13);
  int64_t next = rows;
  for (auto _ : state) {
    std::map<std::string, Delta> leaf_deltas;
    Delta d(rig.vdp.Find("L1")->schema);
    for (int i = 0; i < batch; ++i) {
      Check(d.AddInsert(Tuple({next++, rng.UniformInt(0, 100)})), "atom");
    }
    leaf_deltas.emplace("L1", std::move(d));
    TempStore temps;
    IupStats stats = Unwrap(rig.iup->RunKernel(leaf_deltas, &temps),
                            "kernel");
    benchmark::DoNotOptimize(stats.atoms_propagated);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_E12_BatchScaling)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

void BM_E12_RelationSizeScaling(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  DirectRig rig(MakeWideVdp(2));
  SeedWide(&rig, 2, rows);
  Rng rng(14);
  int64_t next = rows;
  for (auto _ : state) {
    std::map<std::string, Delta> leaf_deltas;
    Delta d(rig.vdp.Find("L1")->schema);
    Check(d.AddInsert(Tuple({next++, rng.UniformInt(0, 100)})), "atom");
    leaf_deltas.emplace("L1", std::move(d));
    TempStore temps;
    IupStats stats = Unwrap(rig.iup->RunKernel(leaf_deltas, &temps),
                            "kernel");
    benchmark::DoNotOptimize(stats.atoms_propagated);
  }
}
BENCHMARK(BM_E12_RelationSizeScaling)
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536);

void BM_E12_DepthScaling(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  DirectRig rig(MakeDeepVdp(depth));
  // Seed the chain bottom-up.
  {
    Relation base(rig.vdp.Find("L'")->schema, Semantics::kBag);
    for (int r = 0; r < 512; ++r) {
      Check(base.Insert(Tuple({int64_t{r}, int64_t{r % 7}})), "seed");
    }
    Check(rig.store->SetRepo("L'", base), "set");
    Check(rig.store->SetRepo("L''", base), "set");
    NodeStateFn states = [&rig](const std::string& node,
                                const std::vector<std::string>&)
        -> Result<std::shared_ptr<const Relation>> {
      SQ_ASSIGN_OR_RETURN(const Relation* repo, rig.store->Repo(node));
      return std::shared_ptr<const Relation>(std::shared_ptr<void>(), repo);
    };
    for (int i = 1; i <= depth; ++i) {
      std::string name = "U" + std::to_string(i);
      Relation u =
          Unwrap(rig.vdp.Find(name)->def->Evaluate(states), "eval U");
      Check(rig.store->SetRepo(name, std::move(u)), "set U");
    }
  }
  Rng rng(15);
  int64_t next = 1000;
  for (auto _ : state) {
    std::map<std::string, Delta> leaf_deltas;
    Delta d(rig.vdp.Find("L")->schema);
    Check(d.AddInsert(Tuple({next++, rng.UniformInt(0, 7)})), "atom");
    leaf_deltas.emplace("L", std::move(d));
    TempStore temps;
    IupStats stats = Unwrap(rig.iup->RunKernel(leaf_deltas, &temps),
                            "kernel");
    benchmark::DoNotOptimize(stats.atoms_propagated);
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_E12_DepthScaling)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace bench
}  // namespace squirrel

BENCHMARK_MAIN();
