// Annotation advisor: plan a VDP from view definitions and apply the §5.3
// heuristics to suggest which attributes to materialize, then show the
// measured consequences of the suggestion against the two extremes.
//
// This is Squirrel's "different VDPs/annotations for the same view may be
// appropriate under different query and update characteristics" in tool
// form: feed it workload hints, get an annotation plus a cost sketch.

#include <cstdio>

#include "baselines/zgh_warehouse.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "vdp/planner.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

Schema Decl(const char* text) {
  return Must(ParseSchemaDecl(text), "schema").schema;
}

struct Costs {
  size_t store_bytes = 0;
  uint64_t update_polls = 0;
  uint64_t query_polls = 0;
};

/// Runs a small synthetic workload and reports store size and poll counts.
Costs Evaluate(const Vdp& vdp, const Annotation& ann) {
  SourceDb trades_db("TradesDB"), ref_db("RefDB");
  Die(trades_db.AddRelation(
          "trades", Decl("trades(tid, isin, qty, px) key(tid)")),
      "add");
  Die(ref_db.AddRelation(
          "instruments", Decl("instruments(iisin, name string, sector)"
                              " key(iisin)")),
      "add");
  for (int i = 0; i < 50; ++i) {
    Die(ref_db.InsertTuple(0, "instruments",
                           Tuple({i, std::string("inst"), i % 7})),
        "seed");
  }
  Scheduler scheduler;
  std::vector<SourceSetup> sources = {{&trades_db, 0.5, 0.2, 0.0},
                                      {&ref_db, 0.5, 0.2, 0.0}};
  auto mediator = Must(
      Mediator::Create(vdp, ann, sources, &scheduler, MediatorOptions{}),
      "mediator");
  Die(mediator->Start(), "start");
  // Hot trades feed, a few queries.
  for (int i = 0; i < 60; ++i) {
    scheduler.At(1.0 + i, [&trades_db, &scheduler, i]() {
      Die(trades_db.InsertTuple(scheduler.Now(), "trades",
                                Tuple({i, i % 50, 10, 100 + i})),
          "trade");
    });
  }
  uint64_t query_polls = 0;
  for (int i = 0; i < 6; ++i) {
    scheduler.At(70.0 + i, [&mediator, &query_polls]() {
      mediator->SubmitQuery(ViewQuery{"TradeBook", {"tid", "isin"}, nullptr},
                            [&query_polls](Result<ViewAnswer> ans) {
                              Die(ans.status(), "query");
                              query_polls += ans->polls;
                            });
    });
  }
  scheduler.RunUntil(1000.0);
  Costs out;
  out.store_bytes = mediator->StoreBytes();
  out.update_polls = mediator->stats().polls - query_polls;
  out.query_polls = query_polls;
  return out;
}

}  // namespace

int main() {
  std::printf("Annotation advisor\n==================\n\n");

  // The integrated view: a trade blotter joined with instrument reference
  // data. Trades arrive constantly; reference data is almost static.
  PlannerInput input;
  input.scans["trades"] = {"TradesDB", "trades",
                           Decl("trades(tid, isin, qty, px) key(tid)")};
  input.scans["instruments"] = {
      "RefDB", "instruments",
      Decl("instruments(iisin, name string, sector) key(iisin)")};
  input.exports.push_back(
      {"TradeBook",
       Must(ParseAlgebra("project[tid, isin, qty, px, name, sector]("
                         "trades join[isin = iisin] instruments)"),
            "view")});
  Vdp vdp = Must(PlanVdp(input), "plan");
  std::printf("Planned VDP:\n%s\n", vdp.ToString().c_str());
  std::printf("Graphviz available via Vdp::ToDot().\n\n");

  // Workload hints: the trades source is hot; queries mostly touch the
  // trade identifiers, not the reference columns.
  AnnotationHints hints;
  hints.source_update_freq = {{"TradesDB", 50.0}, {"RefDB", 0.01}};
  hints.hot_attrs["TradeBook"] = {"tid", "isin", "qty", "px"};
  Annotation suggested = SuggestAnnotation(vdp, hints);
  std::printf("Suggested annotation (S5.3 heuristics):\n%s\n",
              suggested.ToString(vdp).c_str());

  struct Option {
    const char* label;
    Annotation ann;
  };
  std::vector<Option> options;
  options.push_back({"fully materialized", Annotation::AllMaterialized()});
  options.push_back({"suggested (S5.3)", suggested});
  options.push_back({"warehouse (ZGHW95)", WarehouseAnnotation(vdp)});
  options.push_back({"fully virtual", FullyVirtualAnnotation(vdp)});

  std::printf("%-22s %12s %12s %12s\n", "annotation", "store_KiB",
              "upd_polls", "query_polls");
  for (auto& opt : options) {
    Die(opt.ann.Validate(vdp), "validate annotation");
    Costs c = Evaluate(vdp, opt.ann);
    std::printf("%-22s %12.1f %12llu %12llu\n", opt.label,
                c.store_bytes / 1024.0,
                static_cast<unsigned long long>(c.update_polls),
                static_cast<unsigned long long>(c.query_polls));
  }
  std::printf(
      "\nReading: the suggestion keeps keys + hot attrs materialized, so a "
      "hot\ntrades feed is absorbed without polling, queries on hot attrs "
      "stay local,\nand the stores stay smaller than full "
      "materialization.\n");
  return 0;
}
