// A domain scenario: integrating a retailer's operational systems.
//
// Three autonomous systems:
//   OrdersDB   — orders(oid, sku, qty, status)       (updates constantly)
//   CatalogDB  — products(psku, price, category)     (updates rarely)
//   StockDB    — stock_by_sku(ssku, on_hand)         (updates sometimes,
//                                                     announces in batches)
//
// Integrated view (written in the spec language Squirrel generates
// mediators from):
//   OpenOrderValue — open orders joined with catalog prices;
//   UnfulfillableOrders — open-order SKUs minus SKUs with healthy stock
//                         (a difference node over two source systems).
//
// The annotation follows §5.3: the frequently-updated orders feed keeps its
// auxiliary relation virtual (Example 2.2's trade), the stable catalog is
// materialized.

#include <cstdio>

#include "mediator/spec.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

// The view language has no attribute renaming (the paper also sets it
// aside), so the two sides of the difference project attributes with the
// same name: both OrdersDB and StockDB expose SKUs under the name `sku`...
// OrdersDB as a column of `orders`, StockDB by declaring its key `sku`.
constexpr const char* kSpec = R"spec(
# Retail integration mediator (generated from this spec).
source OrdersDB comm 0.3 qproc 0.1 announce 0
  relation orders(oid, sku, qty, status) key(oid)
source CatalogDB comm 0.8 qproc 0.3 announce 0
  relation products(psku, price, category) key(psku)
source StockDB comm 0.5 qproc 0.2 announce 2.0
  relation stock(sku, on_hand) key(sku)

export OpenOrderValue = project[oid, sku, qty, price](
    select[status = 1](orders) join[sku = psku] products)

# Open-order SKUs that do NOT have at least 10 units on hand.
export UnfulfillableOrders = project[sku](select[status = 1](orders))
    diff project[sku](select[on_hand >= 10](stock))

option strategy auto
)spec";

}  // namespace

int main() {
  std::printf("Retail integration: generating a mediator from a spec\n");

  MediatorSpec spec = Must(ParseMediatorSpec(kSpec), "parse spec");
  Scheduler scheduler;
  GeneratedSystem sys = Must(GenerateSystem(spec, &scheduler), "generate");
  std::printf("\nPlanned VDP:\n%s\n", sys.vdp.ToString().c_str());

  // Seed data.
  SourceDb* orders = sys.Source("OrdersDB");
  SourceDb* catalog = sys.Source("CatalogDB");
  SourceDb* stock = sys.Source("StockDB");
  for (int i = 0; i < 6; ++i) {
    Die(catalog->InsertTuple(0, "products", Tuple({100 + i, 10 + 3 * i, i % 2})),
        "seed catalog");
    Die(stock->InsertTuple(0, "stock", Tuple({100 + i, i * 7})),
        "seed stock");
  }
  Die(orders->InsertTuple(0, "orders", Tuple({1, 100, 2, 1})), "seed");
  Die(orders->InsertTuple(0, "orders", Tuple({2, 103, 1, 1})), "seed");
  Die(orders->InsertTuple(0, "orders", Tuple({3, 104, 5, 0})), "seed");

  Die(sys.mediator->Start(), "start");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("%s is a %s\n", sys.mediator->SourceNames()[i].c_str(),
                ContributorKindName(sys.mediator->ContributorKinds()[i]));
  }

  // A steady stream of order updates plus one catalog price change and a
  // stock movement (batched by StockDB's 2-unit announce period).
  for (int i = 0; i < 10; ++i) {
    scheduler.At(1.0 + i, [&, i]() {
      Die(orders->InsertTuple(scheduler.Now(), "orders",
                              Tuple({10 + i, 100 + (i % 6), 1, 1})),
          "order");
    });
  }
  scheduler.At(5.5, [&]() {
    Die(catalog->DeleteTuple(scheduler.Now(), "products",
                             Tuple({100, 10, 0})),
        "price change (delete)");
    Die(catalog->InsertTuple(scheduler.Now(), "products",
                             Tuple({100, 12, 0})),
        "price change (insert)");
  });
  scheduler.At(7.0, [&]() {
    Die(stock->DeleteTuple(scheduler.Now(), "stock", Tuple({105, 35})),
        "stock move (delete)");
    Die(stock->InsertTuple(scheduler.Now(), "stock", Tuple({105, 3})),
        "stock move (insert)");
  });

  auto show = [&](const char* label, Result<ViewAnswer> ans) {
    Die(ans.status(), "query");
    std::printf("\n%s: %zu rows (polls=%llu) at t=%.2f\n", label,
                ans->data.DistinctSize(),
                static_cast<unsigned long long>(ans->polls),
                ans->commit_time);
    for (const auto& [tuple, count] : ans->data.SortedRows()) {
      (void)count;
      std::printf("    %s\n", tuple.ToString().c_str());
    }
  };
  scheduler.At(20.0, [&]() {
    sys.mediator->SubmitQuery(ViewQuery{"OpenOrderValue", {}, nullptr},
                              [&](Result<ViewAnswer> a) {
                                show("OpenOrderValue", std::move(a));
                              });
  });
  scheduler.At(21.0, [&]() {
    sys.mediator->SubmitQuery(ViewQuery{"UnfulfillableOrders", {}, nullptr},
                              [&](Result<ViewAnswer> a) {
                                show("UnfulfillableOrders", std::move(a));
                              });
  });
  scheduler.RunUntil(200.0);

  std::printf(
      "\nmediator processed %llu update txns, %llu queries, %llu polls\n",
      static_cast<unsigned long long>(sys.mediator->stats().update_txns),
      static_cast<unsigned long long>(sys.mediator->stats().query_txns),
      static_cast<unsigned long long>(sys.mediator->stats().polls));
  return 0;
}
