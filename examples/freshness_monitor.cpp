// Freshness monitoring (paper §3 & §7): run an integration environment with
// configurable delays, measure how stale query answers really are, and
// compare against Theorem 7.2's guaranteed-freshness bound.
//
//   usage: freshness_monitor [ann_delay] [update_period]
//
// Try e.g. `freshness_monitor 5 3` to watch staleness rise with the
// announcement and queue-flush policies while staying under the bound.

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "mediator/freshness.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "sim/fault.h"
#include "vdp/paper_examples.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  const double ann_delay = argc > 1 ? std::atof(argv[1]) : 2.0;
  const double update_period = argc > 2 ? std::atof(argv[2]) : 3.0;
  std::printf("freshness monitor: ann_delay=%.2f update_period=%.2f\n",
              ann_delay, update_period);

  SourceDb db1("DB1"), db2("DB2");
  Die(db1.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "d").schema),
      "add");
  Die(db2.AddRelation(
          "S", Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "d").schema),
      "add");
  Die(db2.InsertTuple(0, "S", Tuple({100, 1, 10})), "seed");

  Scheduler scheduler;
  MediatorOptions options;
  options.update_period = update_period;
  options.u_proc_delay = 0.05;
  options.q_proc_delay = 0.05;
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  std::vector<SourceSetup> sources = {{&db1, 0.5, 0.2, ann_delay},
                                      {&db2, 0.5, 0.2, 0.0}};
  auto mediator = Must(Mediator::Create(vdp, AnnotationExample21(), sources,
                                        &scheduler, options),
                       "mediator");
  Die(mediator->Start(), "start");

  // Workload: R commits every ~3 units, queries shortly after each commit
  // (the worst case for staleness), for 200 time units.
  Rng rng(7);
  Time now = 1.0;
  int key = 0;
  while (now < 200.0) {
    Time commit_at = now;
    scheduler.At(commit_at, [&db1, &scheduler, k = key]() {
      Die(db1.InsertTuple(scheduler.Now(), "R",
                          Tuple({k, 100, k % 50, 100})),
          "commit");
    });
    ++key;
    scheduler.At(commit_at + 0.3, [&mediator]() {
      mediator->SubmitQuery(ViewQuery{"T", {"r1"}, nullptr},
                            [](Result<ViewAnswer> ans) {
                              Die(ans.status(), "query");
                            });
    });
    now += 3.0 + rng.UniformDouble() * 2;
    scheduler.RunUntil(now);
  }
  scheduler.RunUntil(now + 100.0);

  FreshnessReport report = CheckFreshness(
      mediator->trace(), mediator->DelayProfiles(), mediator->Delays(),
      mediator->ContributorKinds(), {&db1, &db2});
  std::printf("\n%-8s %-26s %10s %10s %10s %8s\n", "source", "kind",
              "max_stale", "mean", "bound_f", "ok?");
  for (const auto& sf : report.per_source) {
    std::printf("%-8s %-26s %10.3f %10.3f %10.3f %8s\n", sf.source.c_str(),
                ContributorKindName(sf.kind), sf.max_staleness,
                sf.mean_staleness, sf.bound,
                sf.within_bound ? "yes" : "VIOLATED");
  }
  std::printf("\n%zu query transactions sampled; %s\n",
              report.per_source.empty() ? 0 : report.per_source[0].samples,
              report.all_within_bound
                  ? "every answer within Theorem 7.2's bound"
                  : "BOUND VIOLATED — this should never happen");

  // Degraded reads (DESIGN.md §9): under Example 2.3's hybrid annotation a
  // query touching the virtual r3 must poll DB1. Crash DB1 for 10..60 with
  // degraded reads on: instead of kUnavailable the caller gets the
  // materialized fraction of the answer plus per-source staleness
  // annotations, and normal answers resume once DB1 rejoins.
  std::printf("\n-- degraded reads: DB1 down 10..60, hybrid annotation --\n");
  SourceDb db1b("DB1"), db2b("DB2");
  Die(db1b.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "d").schema),
      "add");
  Die(db2b.AddRelation(
          "S", Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "d").schema),
      "add");
  Die(db1b.InsertTuple(0, "R", Tuple({1, 100, 11, 100})), "seed");
  Die(db2b.InsertTuple(0, "S", Tuple({100, 5, 10})), "seed");
  FaultPlan crash_plan;
  crash_plan.crashes["DB1"] = {{10.0, 60.0}};
  FaultInjector inj1(crash_plan, 1), inj2(FaultPlan{}, 2);

  Scheduler sched2;
  MediatorOptions opt2;
  opt2.degraded_reads = true;
  opt2.poll_timeout = 2.0;  // supervise polls so a dead source can't hang us
  auto med2 = Must(Mediator::Create(vdp, AnnotationExample23(vdp),
                                    {{&db1b, 0.5, 0.2, 0.0, &inj1},
                                     {&db2b, 0.5, 0.2, 0.0, &inj2}},
                                    &sched2, opt2),
                   "mediator");
  Die(med2->Start(), "start");

  auto print_answer = [](const char* tag) {
    return [tag](Result<ViewAnswer> ans) {
      Die(ans.status(), "query");
      std::printf("%s: %s, %zu row(s)", tag,
                  ans->degraded ? "DEGRADED" : "full answer",
                  static_cast<size_t>(ans->data.DistinctSize()));
      for (const auto& a : ans->missing_attrs) {
        std::printf(" [missing %s]", a.c_str());
      }
      std::printf("\n");
      for (const auto& s : ans->staleness) {
        std::printf("    %-8s staleness=%6.2f%s\n", s.source.c_str(),
                    s.staleness, s.down ? "  (DOWN)" : "");
      }
    };
  };
  sched2.At(40.0, [&med2, &print_answer]() {
    med2->SubmitQuery(ViewQuery{"T", {"r1", "r3"}, nullptr},
                      print_answer("t=40  (DB1 down)"));
  });
  // A post-recovery commit announces, clearing DB1's quarantine, so the
  // later query polls normally again.
  sched2.At(70.0, [&db1b, &sched2]() {
    Die(db1b.InsertTuple(sched2.Now(), "R", Tuple({2, 100, 22, 100})),
        "commit");
  });
  sched2.At(120.0, [&med2, &print_answer]() {
    med2->SubmitQuery(ViewQuery{"T", {"r1", "r3"}, nullptr},
                      print_answer("t=120 (DB1 rejoined)"));
  });
  sched2.RunUntil(200.0);
  std::printf("degraded queries served: %llu\n",
              static_cast<unsigned long long>(med2->stats().degraded_queries));
  return report.all_within_bound ? 0 : 1;
}
