// Quickstart: the paper's running example (Figure 1 / Examples 2.1-2.3)
// end to end.
//
// Two autonomous source databases hold R(r1,r2,r3,r4) and S(s1,s2,s3); a
// Squirrel mediator exports the integrated view
//   T = π_{r1,r3,s1,s2}(σ_{r4=100} R ⋈_{r2=s1} σ_{s3<50} S)
// maintained incrementally from the sources' update announcements. The
// example runs the fully materialized annotation, then re-runs with the
// hybrid annotation of Example 2.3 to show virtual attributes at work.

#include <cstdio>

#include "mediator/consistency.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "vdp/paper_examples.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

void RunScenario(const char* title, const Annotation& ann) {
  std::printf("\n----- %s -----\n", title);

  // 1. Two autonomous sources with a little data.
  SourceDb db1("DB1"), db2("DB2");
  Die(db1.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "decl")
                   .schema),
      "add R");
  Die(db2.AddRelation(
          "S",
          Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "decl").schema),
      "add S");
  Die(db1.InsertTuple(0, "R", Tuple({1, 100, 11, 100})), "seed");
  Die(db1.InsertTuple(0, "R", Tuple({2, 200, 22, 100})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({100, 5, 10})), "seed");

  // 2. The Figure 1 VDP and a mediator over a simulated network
  //    (0.5 time units one-way, immediate update announcements).
  Scheduler scheduler;
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  std::printf("VDP:\n%s", vdp.ToString().c_str());
  std::printf("annotation:\n%s", ann.ToString(vdp).c_str());

  std::vector<SourceSetup> sources = {{&db1, 0.5, 0.1, 0.0},
                                      {&db2, 0.5, 0.1, 0.0}};
  auto mediator = Must(
      Mediator::Create(vdp, ann, sources, &scheduler, MediatorOptions{}),
      "mediator");
  Die(mediator->Start(), "start");

  // 3. Source-side updates, announced to the mediator automatically.
  scheduler.At(1.0, [&]() {
    Die(db2.InsertTuple(scheduler.Now(), "S", Tuple({200, 6, 20})), "upd");
  });
  scheduler.At(2.0, [&]() {
    Die(db1.InsertTuple(scheduler.Now(), "R", Tuple({3, 200, 33, 100})),
        "upd");
  });

  // 4. Queries against the integrated view.
  auto show = [&](const char* label, Result<ViewAnswer> ans) {
    Die(ans.status(), "query");
    std::printf("%-34s -> %zu rows, polls=%llu, virtual=%s, t=%.2f\n", label,
                ans->data.DistinctSize(),
                static_cast<unsigned long long>(ans->polls),
                ans->used_virtual ? "yes" : "no", ans->commit_time);
    for (const auto& [tuple, count] : ans->data.SortedRows()) {
      (void)count;
      std::printf("    %s\n", tuple.ToString().c_str());
    }
  };
  scheduler.At(5.0, [&]() {
    mediator->SubmitQuery(
        Must(ParseViewQuery("T"), "parse"),
        [&](Result<ViewAnswer> a) { show("T (all attributes)", std::move(a)); });
  });
  scheduler.At(6.0, [&]() {
    mediator->SubmitQuery(
        Must(ParseViewQuery("project[r3, s1](select[r3 < 100](T))"), "parse"),
        [&](Result<ViewAnswer> a) {
          show("pi[r3,s1](sel[r3<100](T))", std::move(a));
        });
  });
  scheduler.RunUntil(100.0);

  // 5. Independent verification: the trace satisfies the paper's
  //    consistency conditions (Theorem 7.1).
  ConsistencyChecker checker(&mediator->vdp(), &mediator->annotation(),
                             {&db1, &db2});
  ConsistencyReport report =
      Must(checker.Check(mediator->trace()), "check");
  std::printf("consistency: %s (%zu transactions verified)\n",
              report.consistent() ? "OK" : "VIOLATED",
              report.entries_checked);
}

}  // namespace

int main() {
  std::printf("Squirrel quickstart: Figure 1's integrated view\n");
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  RunScenario("Example 2.1: fully materialized support",
              AnnotationExample21());
  RunScenario("Example 2.3: hybrid T[r1^m, r3^v, s1^m, s2^v]",
              AnnotationExample23(vdp));
  return 0;
}
