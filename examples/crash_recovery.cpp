// Crash recovery: the mediator's checkpoint + write-ahead log on a real file.
//
// The mediator's hard state (local store, update queue, per-source dedup
// cursors, reflect vector) is checkpointed to a FileLogDevice and every
// update transaction writes begin/commit records. This example kills the
// mediator mid-run ("power failure"), shows queries failing over while it is
// down, recovers it from the on-disk log, and demonstrates that the answer
// after recovery equals the answer before the crash. A second run with the
// WAL disabled (checkpoint-only mode) shows the committed updates being
// lost — the log, not the checkpoint, is what makes commits durable.
//
// Two further runs exercise the storage integrity layer (CRC32C-framed
// records, dual-generation checkpoints): a disk that corrupts the NEWEST
// checkpoint makes recovery fall back one generation and replay the longer
// WAL suffix — same answers, one counted fallback — and a disk that corrupts
// BOTH retained generations makes recovery refuse with the typed kCorrupted
// diagnostic instead of serving silently wrong data.
//
// ARQ redelivery of announcements that arrive while the mediator is down is
// exercised by the seeded simulation harness (tests/testing/sim_harness.cc);
// here the sources stay quiet during the outage to keep the story small.

#include <cstdio>
#include <string>
#include <vector>

#include "mediator/durability/integrity.h"
#include "mediator/durability/log_device.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "vdp/paper_examples.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

/// A disk whose reads lie: flips one payload byte of chosen records at
/// ReadAll time (what recovery sees), leaving appends untouched. Flipping
/// past the magic word keeps the record's class identifiable, so recovery
/// triages it as a damaged checkpoint generation rather than unknown bytes.
class FlipOnReadDevice : public LogDevice {
 public:
  explicit FlipOnReadDevice(LogDevice* inner) : inner_(inner) {}

  /// Arms a flip on the newest \p generations checkpoint-class records.
  void ArmCheckpointFlips(int generations) {
    auto records = inner_->ReadAll();
    Die(records.status(), "arm flips");
    std::vector<uint64_t> checkpoints;
    for (const auto& rec : *records) {
      if (PeekFrameClass(rec.bytes) == FrameClass::kCheckpoint) {
        checkpoints.push_back(rec.lsn);
      }
    }
    for (int g = 0; g < generations && !checkpoints.empty(); ++g) {
      flip_lsns_.push_back(checkpoints.back());
      checkpoints.pop_back();
    }
  }

  Result<uint64_t> Append(std::string bytes) override {
    return inner_->Append(std::move(bytes));
  }
  Status TruncatePrefix(uint64_t new_begin) override {
    return inner_->TruncatePrefix(new_begin);
  }
  Result<std::vector<LogRecord>> ReadAll() const override {
    auto records = inner_->ReadAll();
    if (!records.ok()) return records;
    for (LogRecord& rec : *records) {
      for (uint64_t lsn : flip_lsns_) {
        if (rec.lsn == lsn && rec.bytes.size() > 20) rec.bytes[20] ^= 0x01;
      }
    }
    return records;
  }
  uint64_t NextLsn() const override { return inner_->NextLsn(); }
  uint64_t SizeBytes() const override { return inner_->SizeBytes(); }

 private:
  LogDevice* inner_;
  std::vector<uint64_t> flip_lsns_;
};

void RunScenario(const std::string& wal_path, bool wal_enabled) {
  std::printf("\n----- %s -----\n",
              wal_enabled ? "WAL enabled: commits survive the crash"
                          : "WAL disabled (checkpoint-only): commits are lost");
  std::remove(wal_path.c_str());
  auto device = Must(FileLogDevice::Open(wal_path), "open wal");

  SourceDb db1("DB1"), db2("DB2");
  Die(db1.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "decl")
                   .schema),
      "add R");
  Die(db2.AddRelation(
          "S", Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "decl").schema),
      "add S");
  Die(db1.InsertTuple(0, "R", Tuple({1, 100, 11, 100})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({100, 5, 10})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({200, 6, 20})), "seed");

  Scheduler scheduler;
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  MediatorOptions options;
  options.durability.device = device.get();
  options.durability.wal = wal_enabled;
  options.durability.checkpoint_every = wal_enabled ? 16 : 0;
  std::vector<SourceSetup> sources = {{&db1, 0.5, 0.1, 0.0},
                                      {&db2, 0.5, 0.1, 0.0}};
  auto mediator =
      Must(Mediator::Create(vdp, AnnotationExample21(), sources, &scheduler,
                            options),
           "mediator");
  Die(mediator->Start(), "start");

  auto show = [&](const char* label, Result<ViewAnswer> ans) {
    if (!ans.ok()) {
      std::printf("%-26s -> %s\n", label, ans.status().ToString().c_str());
      return;
    }
    std::printf("%-26s ->", label);
    for (const auto& [tuple, count] : ans->data.SortedRows()) {
      (void)count;
      std::printf(" %s", tuple.ToString().c_str());
    }
    std::printf("\n");
  };
  auto query_at = [&](Time at, const char* label) {
    scheduler.At(at, [&, label]() {
      mediator->SubmitQuery(
          Must(ParseViewQuery("T"), "parse"),
          [&, label](Result<ViewAnswer> a) { show(label, std::move(a)); });
    });
  };

  // Two source updates commit and are announced; the mediator applies them
  // as logged update transactions.
  scheduler.At(1.0, [&]() {
    Die(db1.InsertTuple(scheduler.Now(), "R", Tuple({2, 200, 22, 100})),
        "upd");
  });
  scheduler.At(2.0, [&]() {
    Die(db2.InsertTuple(scheduler.Now(), "S", Tuple({300, 7, 30})), "upd");
  });
  query_at(5.0, "T before crash");

  // Power failure at t=6: all volatile mediator state is gone. Only the
  // bytes in the WAL file survive.
  scheduler.At(6.0, [&]() {
    mediator->Crash();
    std::printf("t=6.0  power failure (WAL file keeps %llu records)\n",
                static_cast<unsigned long long>(device->NextLsn()));
  });
  query_at(6.5, "T while down");

  scheduler.At(8.0, [&]() {
    Die(mediator->Recover(), "recover");
    const MediatorStats& s = mediator->stats();
    std::printf(
        "t=8.0  recovered from %s: txns replayed=%llu rolled back=%llu "
        "msgs requeued=%llu\n",
        wal_path.c_str(), static_cast<unsigned long long>(s.recovery_txns_replayed),
        static_cast<unsigned long long>(s.recovery_txns_rolled_back),
        static_cast<unsigned long long>(s.recovery_msgs_requeued));
  });
  query_at(10.0, "T after recovery");
  scheduler.RunUntil(100.0);

  // Reopen the log the way a fresh process would and inventory it.
  auto reopened = Must(FileLogDevice::Open(wal_path), "reopen wal");
  auto records = Must(reopened->ReadAll(), "read wal");
  std::printf("on disk: %zu records (next LSN %llu) in %s\n", records.size(),
              static_cast<unsigned long long>(reopened->NextLsn()),
              wal_path.c_str());
  std::remove(wal_path.c_str());
}

// The storage integrity phases: the same crash story, but the disk damages
// checkpoint records between the crash and the recovery. One corrupted
// generation is survivable (fall back to the previous checkpoint, replay the
// longer WAL suffix); both generations corrupted is a typed refusal.
void RunCorruptionScenario(const std::string& wal_path,
                           int corrupt_generations) {
  std::printf("\n----- disk corrupts %s -----\n",
              corrupt_generations == 1
                  ? "the NEWEST checkpoint: fall back one generation"
                  : "BOTH checkpoint generations: typed kCorrupted refusal");
  std::remove(wal_path.c_str());
  auto file_device = Must(FileLogDevice::Open(wal_path), "open wal");
  FlipOnReadDevice device(file_device.get());

  SourceDb db1("DB1"), db2("DB2");
  Die(db1.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "decl")
                   .schema),
      "add R");
  Die(db2.AddRelation(
          "S", Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "decl").schema),
      "add S");
  Die(db1.InsertTuple(0, "R", Tuple({1, 100, 11, 100})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({100, 5, 10})), "seed");

  Scheduler scheduler;
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  MediatorOptions options;
  options.durability.device = &device;
  options.durability.checkpoint_every = 2;  // several generations per run
  std::vector<SourceSetup> sources = {{&db1, 0.5, 0.1, 0.0},
                                      {&db2, 0.5, 0.1, 0.0}};
  auto mediator =
      Must(Mediator::Create(vdp, AnnotationExample21(), sources, &scheduler,
                            options),
           "mediator");
  Die(mediator->Start(), "start");

  auto show = [&](const char* label, Result<ViewAnswer> ans) {
    if (!ans.ok()) {
      std::printf("%-26s -> %s\n", label, ans.status().ToString().c_str());
      return;
    }
    std::printf("%-26s ->", label);
    for (const auto& [tuple, count] : ans->data.SortedRows()) {
      (void)count;
      std::printf(" %s", tuple.ToString().c_str());
    }
    std::printf("\n");
  };
  auto query_at = [&](Time at, const char* label) {
    scheduler.At(at, [&, label]() {
      mediator->SubmitQuery(
          Must(ParseViewQuery("T"), "parse"),
          [&, label](Result<ViewAnswer> a) { show(label, std::move(a)); });
    });
  };

  // Enough committed updates that two periodic checkpoints land after the
  // initial one — the log then retains exactly two generations.
  scheduler.At(1.0, [&]() {
    Die(db1.InsertTuple(scheduler.Now(), "R", Tuple({2, 200, 22, 100})),
        "upd");
  });
  scheduler.At(2.0, [&]() {
    Die(db2.InsertTuple(scheduler.Now(), "S", Tuple({200, 6, 20})), "upd");
  });
  scheduler.At(3.0, [&]() {
    Die(db1.InsertTuple(scheduler.Now(), "R", Tuple({3, 200, 33, 100})),
        "upd");
  });
  query_at(5.0, "T before crash");

  scheduler.At(6.0, [&]() {
    mediator->Crash();
    std::printf("t=6.0  power failure\n");
  });

  scheduler.At(8.0, [&, corrupt_generations]() {
    device.ArmCheckpointFlips(corrupt_generations);
    std::printf("t=8.0  disk flips a payload byte in %d checkpoint "
                "generation(s); recovering...\n",
                corrupt_generations);
    Status st = mediator->Recover();
    if (st.ok()) {
      const MediatorStats& s = mediator->stats();
      std::printf(
          "       recovered: checkpoint fallbacks=%llu tail repairs=%llu "
          "txns replayed=%llu\n",
          static_cast<unsigned long long>(s.recovery_checkpoint_fallbacks),
          static_cast<unsigned long long>(s.recovery_tail_repairs),
          static_cast<unsigned long long>(s.recovery_txns_replayed));
    } else {
      std::printf("       recovery refused: %s\n", st.ToString().c_str());
      std::printf("       (no silent divergence: the mediator stays down "
                  "rather than serve from damaged state)\n");
    }
  });
  query_at(10.0, "T after recovery attempt");
  scheduler.RunUntil(100.0);
  std::remove(wal_path.c_str());
}

}  // namespace

int main() {
  std::printf("Squirrel crash recovery: file-backed checkpoint + WAL\n");
  RunScenario("/tmp/squirrel_crash_recovery.wal", /*wal_enabled=*/true);
  RunScenario("/tmp/squirrel_crash_recovery.wal", /*wal_enabled=*/false);
  RunCorruptionScenario("/tmp/squirrel_crash_recovery.wal",
                        /*corrupt_generations=*/1);
  RunCorruptionScenario("/tmp/squirrel_crash_recovery.wal",
                        /*corrupt_generations=*/2);
  return 0;
}
