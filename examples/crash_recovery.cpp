// Crash recovery: the mediator's checkpoint + write-ahead log on a real file.
//
// The mediator's hard state (local store, update queue, per-source dedup
// cursors, reflect vector) is checkpointed to a FileLogDevice and every
// update transaction writes begin/commit records. This example kills the
// mediator mid-run ("power failure"), shows queries failing over while it is
// down, recovers it from the on-disk log, and demonstrates that the answer
// after recovery equals the answer before the crash. A second run with the
// WAL disabled (checkpoint-only mode) shows the committed updates being
// lost — the log, not the checkpoint, is what makes commits durable.
//
// ARQ redelivery of announcements that arrive while the mediator is down is
// exercised by the seeded simulation harness (tests/testing/sim_harness.cc);
// here the sources stay quiet during the outage to keep the story small.

#include <cstdio>
#include <string>

#include "mediator/durability/log_device.h"
#include "mediator/mediator.h"
#include "relational/parser.h"
#include "vdp/paper_examples.h"

using namespace squirrel;

namespace {

void Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "error (%s): %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Must(Result<T> r, const char* what) {
  Die(r.status(), what);
  return std::move(r).value();
}

void RunScenario(const std::string& wal_path, bool wal_enabled) {
  std::printf("\n----- %s -----\n",
              wal_enabled ? "WAL enabled: commits survive the crash"
                          : "WAL disabled (checkpoint-only): commits are lost");
  std::remove(wal_path.c_str());
  auto device = Must(FileLogDevice::Open(wal_path), "open wal");

  SourceDb db1("DB1"), db2("DB2");
  Die(db1.AddRelation(
          "R", Must(ParseSchemaDecl("R(r1, r2, r3, r4) key(r1)"), "decl")
                   .schema),
      "add R");
  Die(db2.AddRelation(
          "S", Must(ParseSchemaDecl("S(s1, s2, s3) key(s1)"), "decl").schema),
      "add S");
  Die(db1.InsertTuple(0, "R", Tuple({1, 100, 11, 100})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({100, 5, 10})), "seed");
  Die(db2.InsertTuple(0, "S", Tuple({200, 6, 20})), "seed");

  Scheduler scheduler;
  Vdp vdp = Must(BuildFigure1Vdp(), "vdp");
  MediatorOptions options;
  options.durability.device = device.get();
  options.durability.wal = wal_enabled;
  options.durability.checkpoint_every = wal_enabled ? 16 : 0;
  std::vector<SourceSetup> sources = {{&db1, 0.5, 0.1, 0.0},
                                      {&db2, 0.5, 0.1, 0.0}};
  auto mediator =
      Must(Mediator::Create(vdp, AnnotationExample21(), sources, &scheduler,
                            options),
           "mediator");
  Die(mediator->Start(), "start");

  auto show = [&](const char* label, Result<ViewAnswer> ans) {
    if (!ans.ok()) {
      std::printf("%-26s -> %s\n", label, ans.status().ToString().c_str());
      return;
    }
    std::printf("%-26s ->", label);
    for (const auto& [tuple, count] : ans->data.SortedRows()) {
      (void)count;
      std::printf(" %s", tuple.ToString().c_str());
    }
    std::printf("\n");
  };
  auto query_at = [&](Time at, const char* label) {
    scheduler.At(at, [&, label]() {
      mediator->SubmitQuery(
          Must(ParseViewQuery("T"), "parse"),
          [&, label](Result<ViewAnswer> a) { show(label, std::move(a)); });
    });
  };

  // Two source updates commit and are announced; the mediator applies them
  // as logged update transactions.
  scheduler.At(1.0, [&]() {
    Die(db1.InsertTuple(scheduler.Now(), "R", Tuple({2, 200, 22, 100})),
        "upd");
  });
  scheduler.At(2.0, [&]() {
    Die(db2.InsertTuple(scheduler.Now(), "S", Tuple({300, 7, 30})), "upd");
  });
  query_at(5.0, "T before crash");

  // Power failure at t=6: all volatile mediator state is gone. Only the
  // bytes in the WAL file survive.
  scheduler.At(6.0, [&]() {
    mediator->Crash();
    std::printf("t=6.0  power failure (WAL file keeps %llu records)\n",
                static_cast<unsigned long long>(device->NextLsn()));
  });
  query_at(6.5, "T while down");

  scheduler.At(8.0, [&]() {
    Die(mediator->Recover(), "recover");
    const MediatorStats& s = mediator->stats();
    std::printf(
        "t=8.0  recovered from %s: txns replayed=%llu rolled back=%llu "
        "msgs requeued=%llu\n",
        wal_path.c_str(), static_cast<unsigned long long>(s.recovery_txns_replayed),
        static_cast<unsigned long long>(s.recovery_txns_rolled_back),
        static_cast<unsigned long long>(s.recovery_msgs_requeued));
  });
  query_at(10.0, "T after recovery");
  scheduler.RunUntil(100.0);

  // Reopen the log the way a fresh process would and inventory it.
  auto reopened = Must(FileLogDevice::Open(wal_path), "reopen wal");
  auto records = Must(reopened->ReadAll(), "read wal");
  std::printf("on disk: %zu records (next LSN %llu) in %s\n", records.size(),
              static_cast<unsigned long long>(reopened->NextLsn()),
              wal_path.c_str());
  std::remove(wal_path.c_str());
}

}  // namespace

int main() {
  std::printf("Squirrel crash recovery: file-backed checkpoint + WAL\n");
  RunScenario("/tmp/squirrel_crash_recovery.wal", /*wal_enabled=*/true);
  RunScenario("/tmp/squirrel_crash_recovery.wal", /*wal_enabled=*/false);
  return 0;
}
